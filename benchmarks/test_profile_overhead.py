"""Profiler overhead benchmark — observing a sweep must not steer it.

The rundown profiler threads two hooks through ``run_pool_tasks``: a
no-op branch when profiling is disabled, and a result envelope (wrap +
worker-side pickle + counter flush) when enabled.  This bench holds both
lines with the repo's ABBA paired-ratio idiom (interleaved batches,
median per trial, median across trials, which cancels CPU-frequency
drift and sheds scheduler spikes):

* **disabled** — ``run_sweep`` with ``profiler=None`` vs a bare
  ``run_replication`` loop: the whole driver, hooks included, must cost
  ≤2% over the raw simulation work;
* **enabled** — ``run_sweep`` with a :class:`~repro.obs.PoolProfiler` vs
  disabled: envelope, instrumentation counters and attribution must cost
  ≤10%;
* **attribution coverage** — on the pool path the profiler must account
  for ≥90% of measured task wall time (the acceptance criterion that
  makes ``sweep_scaling.speedup`` explainable instead of mysterious).

Throughput metrics (``replications_per_second``, waterfall
``intervals_per_second``) are gated against
``BENCH_profile.baseline.json`` by ``check_bench_regression.py``; the
overhead *ratios* are asserted here directly, where the paired
measurement already normalizes away host noise.

``BENCH_QUICK=1`` shrinks the workload for CI.  Run directly
(``python benchmarks/test_profile_overhead.py``) or via pytest; either
path writes ``BENCH_profile.json`` to the working directory.
"""

from __future__ import annotations

import json
import os
import statistics
import time
from pathlib import Path

from repro.obs import PoolProfiler, analyze_run
from repro.sweep import SweepSpec, run_replication, run_sweep

QUICK = os.environ.get("BENCH_QUICK", "") not in ("", "0")

#: Replications per timed batch; casper at streams=2 runs ~0.2s each, so
#: per-task work dominates and the hooks are measured, not the fork tax.
REPLICATIONS = 2 if QUICK else 4
ROUNDS = 3 if QUICK else 5
TRIALS = 3
MAX_DISABLED_OVERHEAD = 0.02
MAX_ENABLED_OVERHEAD = 0.10
MIN_COVERAGE = 0.90


def _spec() -> SweepSpec:
    return SweepSpec("casper", replications=REPLICATIONS, seed=0, sim_workers=8, streams=2)


def _timed(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def _raw_loop() -> None:
    data = _spec().to_dict()
    for i in range(REPLICATIONS):
        run_replication(data, i)


def _paired_trial(a, b) -> float:
    """One trial: ABBA-interleaved batches, median(b)/median(a)."""
    times_a: list[float] = []
    times_b: list[float] = []
    for _ in range(ROUNDS):
        times_a.append(_timed(a))
        times_b.append(_timed(b))
        times_b.append(_timed(b))
        times_a.append(_timed(a))
    return statistics.median(times_b) / statistics.median(times_a)


def bench_disabled_overhead() -> dict:
    """Profiler-off sweep driver vs a bare replication loop."""
    spec = _spec()
    ratios = [_paired_trial(_raw_loop, lambda: run_sweep(spec)) for _ in range(TRIALS)]
    return {
        "replications": REPLICATIONS,
        "trials": ratios,
        "overhead_fraction": statistics.median(ratios) - 1.0,
    }


def bench_enabled_overhead() -> dict:
    """Profiled inline sweep vs unprofiled: envelope + counters + flush."""
    spec = _spec()
    ratios = [
        _paired_trial(
            lambda: run_sweep(spec),
            lambda: run_sweep(spec, profiler=PoolProfiler()),
        )
        for _ in range(TRIALS)
    ]
    return {
        "replications": REPLICATIONS,
        "trials": ratios,
        "overhead_fraction": statistics.median(ratios) - 1.0,
    }


def bench_pool_attribution() -> dict:
    """Profiled pool sweep: throughput plus attribution coverage."""
    pool = 4
    spec = SweepSpec(
        "casper", replications=REPLICATIONS * pool, seed=0, sim_workers=8, streams=2
    )
    profiler = PoolProfiler()
    t0 = time.perf_counter()
    outcome = run_sweep(spec, workers=pool, profiler=profiler)
    elapsed = time.perf_counter() - t0
    profile = profiler.profile("replication", outcome.pool_workers)
    totals = profile.totals()
    return {
        "replications": spec.replications,
        "pool_workers": pool,
        "elapsed_seconds": elapsed,
        "replications_per_second": spec.replications / elapsed,
        "coverage": profile.coverage,
        "wall_total_seconds": profile.wall_total,
        "attribution": totals,
        "overheads": [
            {"category": c, "seconds": s, "share": f} for c, s, f in profile.overheads()
        ],
    }


def bench_waterfall() -> dict:
    """Critical-path / idle-waterfall analysis throughput on a real run."""
    from repro.core.mapping import IdentityMapping
    from repro.core.phase import ConstantCost, PhaseProgram, PhaseSpec
    from repro.executive import ExecutiveSimulation

    n = 512 if QUICK else 2_048
    phases = [PhaseSpec(f"p{i}", n, ConstantCost(1.0)) for i in range(3)]
    program = PhaseProgram.chain(phases, [IdentityMapping()] * 2)
    result = ExecutiveSimulation(program, 8, seed=0).run()
    intervals = sum(1 for _ in result.trace.intervals())
    t0 = time.perf_counter()
    report = analyze_run(result)
    elapsed = time.perf_counter() - t0
    totals = report.totals()
    worker_seconds = report.makespan * report.n_workers
    accounted = sum(
        v for row in report.resources[: report.n_workers]
        for v in (*row.busy.values(), *row.idle.values())
    )
    return {
        "intervals": intervals,
        "seconds": elapsed,
        "intervals_per_second": intervals / elapsed if elapsed > 0 else 0.0,
        "accounted_fraction": accounted / worker_seconds,
        "barrier_wait_seconds": totals["idle"]["barrier_wait"],
        "critical_path_steps": len(report.critical_path),
    }


def run_all() -> dict:
    return {
        "quick": QUICK,
        "disabled": bench_disabled_overhead(),
        "enabled": bench_enabled_overhead(),
        "pool_attribution": bench_pool_attribution(),
        "waterfall": bench_waterfall(),
    }


def write_report(results: dict, path: str | Path = "BENCH_profile.json") -> None:
    Path(path).write_text(json.dumps(results, indent=2, sort_keys=True), encoding="utf-8")


def test_profile_overhead():
    results = run_all()
    write_report(results)
    assert results["disabled"]["overhead_fraction"] < MAX_DISABLED_OVERHEAD
    assert results["enabled"]["overhead_fraction"] < MAX_ENABLED_OVERHEAD
    assert results["pool_attribution"]["coverage"] >= MIN_COVERAGE
    # the waterfall fully accounts worker time: busy + idle == makespan each
    assert abs(results["waterfall"]["accounted_fraction"] - 1.0) < 1e-6
    print(json.dumps(results, indent=2, sort_keys=True))


if __name__ == "__main__":
    out = run_all()
    write_report(out)
    print(json.dumps(out, indent=2, sort_keys=True))
