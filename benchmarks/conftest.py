"""Shared helpers for the experiment benchmarks.

Every benchmark regenerates one of the paper's reported quantities
(see DESIGN.md's per-experiment index and EXPERIMENTS.md for the
paper-vs-measured record).  Each test prints the reproduced rows —
run with ``pytest benchmarks/ --benchmark-only -s`` to see them —
and asserts the qualitative *shape* the paper reports.
"""

from __future__ import annotations

import pytest


def emit(title: str, text: str) -> None:
    """Print a reproduced table under a banner (visible with -s)."""
    bar = "=" * max(len(title), 8)
    print(f"\n{bar}\n{title}\n{bar}\n{text}")


@pytest.fixture
def once(benchmark):
    """Run the measured callable exactly once through pytest-benchmark.

    Simulation benches are deterministic and moderately expensive;
    a single round records wall time without multiplying the work.
    """

    def run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return run
