"""E8 — the PAX language construct end to end.

Paper ("Language Construction"): the ``DISPATCH … ENABLE`` forms, the
executive-verified interlock, and branch preprocessing via
``ENABLE/BRANCHINDEPENDENT``.

Regenerated: the paper's own branch example is compiled for both branch
outcomes, run on the simulated machine with and without overlap, and the
interlock is shown rejecting a mis-declared program.  The measured
quantity is the overlap gain delivered *through the language path* —
declarations in source, not Python objects.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.core.overlap import OverlapConfig
from repro.executive import ExecutiveCosts, run_program
from repro.lang import VerificationError, compile_program
from repro.metrics.report import format_table

SOURCE = """
DEFINE PHASE main-phase GRANULES=100 COST=1.0
DEFINE PHASE phase-name-1 GRANULES=100 COST=1.0
DEFINE PHASE phase-name-2 GRANULES=100 COST=1.0

DISPATCH main-phase
    ENABLE/BRANCHINDEPENDENT [
        phase-name-1/MAPPING=IDENTITY
        phase-name-2/MAPPING=UNIVERSAL
    ]
IF (IMOD(LOOPCOUNTER,10).NE.0) THEN GO TO branch-target
DISPATCH phase-name-1
GO TO rejoin
branch-target:
DISPATCH phase-name-2
rejoin:
"""

BAD_SOURCE = """
DEFINE PHASE a GRANULES=8
DEFINE PHASE b GRANULES=8
DEFINE PHASE c GRANULES=8
DISPATCH a ENABLE [b/MAPPING=IDENTITY]
DISPATCH c
"""

COSTS = ExecutiveCosts(0.05, 0.05, 0.05, 0.02, 0.02, 0.02, 0.001)


def sweep():
    rows = []
    gains = []
    for loopcounter in (20, 21):  # not-taken / taken
        prog = compile_program(SOURCE, env={"LOOPCOUNTER": loopcounter})
        rb = run_program(prog, 8, config=OverlapConfig.barrier(), costs=COSTS)
        ro = run_program(prog, 8, config=OverlapConfig(), costs=COSTS)
        follower = prog.phase_sequence()[1]
        mapping = prog.mapping_between("main-phase", follower).kind.value
        gain = rb.makespan / ro.makespan
        rows.append((loopcounter, follower, mapping, rb.makespan, ro.makespan, f"{gain:.3f}"))
        gains.append(gain)
    return rows, gains


def test_e8_language_pipeline(once):
    rows, gains = once(sweep)
    emit(
        "E8: branch-preprocessed overlap through the PAX language",
        format_table(
            ["LOOPCOUNTER", "resolved follower", "mapping", "barrier span",
             "overlap span", "overlap gain"],
            rows,
        ),
    )
    # both branch outcomes were preprocessed into an overlap gain
    assert all(g > 1.0 for g in gains)
    # the two outcomes resolve to different phases
    assert rows[0][1] != rows[1][1]


def test_e8_interlock_rejects_bad_program(once):
    def attempt():
        with pytest.raises(VerificationError, match="ENABLE list"):
            compile_program(BAD_SOURCE)
        return True

    assert once(attempt)
