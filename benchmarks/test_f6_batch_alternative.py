"""F6 — the multi-parallel-job-stream ("batch") alternative.

Paper: "Another alternative is to create a multi-parallel-job-stream
environment that allows computational work of one job stream to fill in
when another job stream enters a computational rundown situation.  This
will bring processor utilization up; however … the introduction of such
a 'batch' environment will inevitably distribute processor resources
among the several job streams and, thus, reduce the total processing
power on any particular job and lengthen its elapsed wall-clock time."

Regenerated: two identical barrier jobs run (a) one after another with
the whole machine each, and (b) together as two job streams sharing the
machine.  Utilization goes up under (b); every job's wall clock goes up
too.  Phase overlap recovers most of the utilization without the
wall-clock penalty.
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.core.mapping import IdentityMapping, NullMapping
from repro.core.overlap import OverlapConfig
from repro.core.phase import PhaseProgram, PhaseSpec
from repro.executive import ExecutiveCosts, run_program
from repro.metrics.report import format_table

WORKERS = 8
COSTS = ExecutiveCosts(0.05, 0.05, 0.05, 0.02, 0.02, 0.02, 0.001)


def job(overlappable: bool = False) -> PhaseProgram:
    mapping = IdentityMapping() if overlappable else NullMapping()
    return PhaseProgram.chain(
        [PhaseSpec(f"p{i}", 68) for i in range(4)],
        [mapping] * 3,
    )


def sweep():
    # (a) dedicated machine, jobs back to back (barrier phases)
    solo = run_program(job(), WORKERS, config=OverlapConfig.barrier(), costs=COSTS)
    # (b) two job streams share the machine
    batch = run_program([job(), job()], WORKERS, config=OverlapConfig.barrier(), costs=COSTS)
    # (c) the paper's preferred fix: overlap inside one job
    overlap = run_program(job(overlappable=True), WORKERS, config=OverlapConfig(), costs=COSTS)
    return solo, batch, overlap


def test_f6_batch_alternative(once):
    solo, batch, overlap = once(sweep)
    rows = [
        ("dedicated, barrier", f"{solo.utilization:.1%}", solo.stream_stats[0].wall_clock),
        (
            "batch (2 streams), barrier",
            f"{batch.utilization:.1%}",
            max(s.wall_clock for s in batch.stream_stats),
        ),
        ("dedicated, phase overlap", f"{overlap.utilization:.1%}", overlap.stream_stats[0].wall_clock),
    ]
    emit(
        "F6: multi-job-stream batch vs phase overlap",
        format_table(["configuration", "utilization", "per-job wall clock"], rows),
    )
    # the batch environment raises utilization...
    assert batch.utilization > solo.utilization
    # ...but lengthens every job's elapsed wall clock
    solo_wall = solo.stream_stats[0].wall_clock
    for s in batch.stream_stats:
        assert s.wall_clock > solo_wall
    # phase overlap raises utilization while *shortening* the job
    assert overlap.utilization > solo.utilization
    assert overlap.stream_stats[0].wall_clock < solo_wall
