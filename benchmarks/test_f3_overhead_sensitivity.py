"""F3 — management-cycle overhead sensitivity.

Paper: the overlap scheme "presumes that completion processing and task
scheduling time is small with respect to task execution time.  In
particular, it assumes that one such completion, enablement, and
scheduling cycle for each of the processors in the system can be
completed in a single task execution time" (p · cycle ≤ task).

Regenerated as a sweep of the management-cycle / task-time ratio: while
the feasibility predicate holds, overlap keeps its gain; once the
executive cycle for all processors no longer fits in a task time, the
serial executive becomes the bottleneck and the gain collapses (and can
invert).
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.analysis import management_cycle_feasible
from repro.core.mapping import IdentityMapping
from repro.core.overlap import OverlapConfig
from repro.core.phase import ConstantCost, PhaseProgram, PhaseSpec
from repro.executive import ExecutiveCosts, TaskSizer, run_program
from repro.metrics.report import format_table

N = 128
WORKERS = 8
TASK_GRANULES = 8  # tasks_per_processor = 2
TASK_TIME = float(TASK_GRANULES)  # granule cost 1.0


def sweep():
    prog = PhaseProgram.chain(
        [PhaseSpec("A", N, ConstantCost(1.0)), PhaseSpec("B", N, ConstantCost(1.0))],
        [IdentityMapping()],
    )
    rows = []
    data = []
    base = ExecutiveCosts(1.0, 1.0, 1.0, 0.5, 0.5, 0.5, 0.01)
    for scale in (0.02, 0.05, 0.1, 0.2, 0.5, 1.0, 2.0):
        costs = base.scaled(scale)
        cycle = costs.cycle_time()
        feasible = management_cycle_feasible(WORKERS, cycle, TASK_TIME)
        rb = run_program(prog, WORKERS, config=OverlapConfig.barrier(), costs=costs,
                         sizer=TaskSizer(2.0))
        ro = run_program(prog, WORKERS, config=OverlapConfig(), costs=costs,
                         sizer=TaskSizer(2.0))
        gain = rb.makespan / ro.makespan
        rows.append(
            (
                f"{WORKERS * cycle / TASK_TIME:.2f}",
                "yes" if feasible else "no",
                rb.makespan,
                ro.makespan,
                f"{gain:.3f}",
            )
        )
        data.append((feasible, gain, rb, ro))
    return rows, data


def test_f3_overhead_sensitivity(once):
    from repro.metrics import bar_chart

    rows, data = once(sweep)
    emit(
        "F3: management-cycle overhead sweep (p*cycle/task; feasible when <= 1)",
        format_table(
            ["p*cycle/task", "feasible", "barrier span", "overlap span", "overlap gain"],
            rows,
        )
        + "\n\n"
        + bar_chart(
            [f"ratio {r[0]} ({'ok' if r[1] == 'yes' else 'INFEASIBLE'})" for r in rows],
            [d[1] for d in data],
            title="overlap gain vs management load (| marks gain = 1.0)",
            baseline=1.0,
        ),
    )
    feasible_gains = [g for f, g, _, _ in [(d[0], d[1], d[2], d[3]) for d in data] if f]
    infeasible_gains = [d[1] for d in data if not d[0]]
    assert feasible_gains and infeasible_gains
    # in the feasible regime overlap helps
    assert min(feasible_gains) > 1.0
    # the best feasible gain beats the worst infeasible one (the paper's
    # assumption is exactly the boundary of usefulness)
    assert max(feasible_gains) > min(infeasible_gains)
    # gains degrade monotonically-ish: the heaviest executive never beats
    # the lightest
    assert data[0][1] >= data[-1][1]
