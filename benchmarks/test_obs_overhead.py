"""Observability overhead: instrumented simulate path vs a no-op bus.

The telemetry layer claims to be cheap enough to leave on: hot paths
cache metric handles, and every publish site is a single attribute call.
This benchmark runs the same simulated workload with full telemetry
(event bus delivering to the default metric subscriptions) and with a
:class:`~repro.obs.events.NullEventBus` baseline (identical call sites,
every event dropped), and asserts the full path stays within ~10 % —
plus an absolute slack absorbing timer noise on runs this short.
"""

from __future__ import annotations

import time

from benchmarks.conftest import emit
from repro.core.mapping import IdentityMapping
from repro.core.overlap import OverlapConfig
from repro.core.phase import ConstantCost, PhaseProgram, PhaseSpec
from repro.executive import run_program
from repro.metrics.report import format_table
from repro.obs import NullEventBus, Telemetry

N = 256
WORKERS = 8
REPEATS = 5
REL_BUDGET = 1.10  # full telemetry within 10 % of the no-op bus
ABS_SLACK = 0.05  # seconds; noise/constant floor for sub-100 ms runs
PER_EVENT_BUDGET_US = 15.0  # publish + metric handlers, per event


def program() -> PhaseProgram:
    return PhaseProgram.chain(
        [
            PhaseSpec("A", N, ConstantCost(1.0)),
            PhaseSpec("B", N, ConstantCost(1.0)),
            PhaseSpec("C", N, ConstantCost(1.0)),
        ],
        [IdentityMapping(), IdentityMapping()],
    )


def best_of(make_telemetry) -> tuple[float, Telemetry]:
    """Minimum wall time over REPEATS runs (min filters scheduler noise)."""
    best = float("inf")
    telemetry = None
    for _ in range(REPEATS):
        t = make_telemetry()
        t0 = time.perf_counter()
        run_program(program(), WORKERS, config=OverlapConfig(), telemetry=t)
        best = min(best, time.perf_counter() - t0)
        telemetry = t
    return best, telemetry


def test_obs_overhead_within_budget():
    null_s, _ = best_of(lambda: Telemetry(bus=NullEventBus()))
    full_s, full_t = best_of(Telemetry)

    ratio = full_s / null_s if null_s > 0 else 1.0
    n_events = full_t.bus.events_published
    per_event_us = (full_s - null_s) * 1e6 / n_events if n_events else 0.0
    emit(
        "OBS — instrumentation overhead on the simulate path",
        format_table(
            ["bus", "best of %d (s)" % REPEATS, "events", "us/event"],
            [
                ["null", f"{null_s:.4f}", "0", ""],
                ["full", f"{full_s:.4f}", str(n_events), f"{per_event_us:.2f}"],
                ["ratio", f"{ratio:.3f}", "", ""],
            ],
        ),
    )

    # the full bus actually did the work the null bus dropped
    assert n_events > 0
    assert full_t.metrics.get("scheduler.granules_completed_total").total() == 3 * N

    assert full_s <= null_s * REL_BUDGET + ABS_SLACK, (
        f"telemetry overhead {ratio:.2f}x exceeds {REL_BUDGET:.2f}x budget "
        f"(full={full_s:.4f}s null={null_s:.4f}s)"
    )
    assert per_event_us <= PER_EVENT_BUDGET_US, (
        f"per-event cost {per_event_us:.2f}us exceeds {PER_EVENT_BUDGET_US}us"
    )
