"""X1 — the paper's identified follow-on strategies, implemented.

Paper (introduction): "There are additional strategies which have been
identified for development.  These include a middle management scheme to
parallelize the serial management function, a direct worker-to-worker
lateral communication scheme, and a data-proximity work assignment
algorithm.  These strategies combined with the overlapping of
computational phases should enhance the management overhead situation."

Regenerated as two ablations on an identity-linked three-phase chain:

* X1a — an *executive-saturated* machine (heavy per-action costs): middle
  management and lateral hand-off each relieve the serial-management
  bottleneck; combined they stack.
* X1b — a machine with *data-movement costs* (remote chunks run 2×
  slower): the proximity policy routes each worker to the chunk adjacent
  to its previous data region, and lateral hand-off (perfect locality by
  construction) stacks on top.
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.core.mapping import IdentityMapping
from repro.core.overlap import OverlapConfig
from repro.core.phase import PhaseProgram, PhaseSpec
from repro.executive import ExecutiveCosts, Extensions, TaskSizer, run_program
from repro.metrics.report import format_table

HEAVY_MGMT = ExecutiveCosts(0.5, 0.5, 0.5, 0.25, 0.25, 0.25, 0.01)
LIGHT_MGMT = ExecutiveCosts(0.05, 0.05, 0.05, 0.02, 0.02, 0.02, 0.001)


def chain(n_phases=3, n=128):
    return PhaseProgram.chain(
        [PhaseSpec(f"p{i}", n) for i in range(n_phases)],
        [IdentityMapping()] * (n_phases - 1),
    )


def sweep_management():
    prog = chain()
    cases = {
        "serial executive (paper baseline)": Extensions(),
        "middle management (4 executives)": Extensions(middle_managers=4),
        "lateral hand-off": Extensions(lateral_handoff=True, lateral_cost=0.05),
        "both": Extensions(middle_managers=4, lateral_handoff=True, lateral_cost=0.05),
    }
    out = {}
    for label, ext in cases.items():
        out[label] = run_program(
            prog, 8, config=OverlapConfig(), costs=HEAVY_MGMT,
            sizer=TaskSizer(4.0), extensions=ext,
        )
    return out


def sweep_proximity():
    prog = chain(n_phases=4)
    cases = {
        "no locality policy": Extensions(remote_penalty=2.0),
        "data-proximity assignment": Extensions(data_proximity=True, remote_penalty=2.0),
        "proximity + lateral hand-off": Extensions(
            data_proximity=True, remote_penalty=2.0, lateral_handoff=True
        ),
    }
    out = {}
    for label, ext in cases.items():
        out[label] = run_program(
            prog, 8, config=OverlapConfig(), costs=LIGHT_MGMT,
            sizer=TaskSizer(4.0), extensions=ext,
        )
    return out


def test_x1a_management_parallelization(once):
    results = once(sweep_management)
    rows = [
        (label, r.makespan, f"{r.utilization:.1%}", r.lateral_handoffs)
        for label, r in results.items()
    ]
    emit(
        "X1a: parallelizing the serial management function "
        "(executive-saturated machine)",
        format_table(["strategy", "makespan", "utilization", "lateral hand-offs"], rows),
    )
    base = results["serial executive (paper baseline)"]
    mm = results["middle management (4 executives)"]
    lat = results["lateral hand-off"]
    both = results["both"]
    assert all(r.granules_executed == base.granules_executed for r in results.values())
    assert mm.makespan < base.makespan
    assert lat.makespan < base.makespan
    assert both.makespan <= min(mm.makespan, lat.makespan) + 1e-9


def test_x1b_data_proximity(once):
    results = once(sweep_proximity)
    rows = [
        (label, r.makespan, f"{r.utilization:.1%}", r.lateral_handoffs)
        for label, r in results.items()
    ]
    emit(
        "X1b: data-proximity work assignment (remote chunks 2x slower)",
        format_table(["strategy", "makespan", "utilization", "lateral hand-offs"], rows),
    )
    base = results["no locality policy"]
    prox = results["data-proximity assignment"]
    both = results["proximity + lateral hand-off"]
    assert prox.makespan < base.makespan
    assert both.makespan < prox.makespan
