"""Grid-sweep engine benchmark — determinism gates plus incremental-rebuild
throughput.

Three sections of ``BENCH_grid.json``:

* ``grid_sweep`` — a small grid executed at pool sizes {1, 2, 4} and once
  more under an interrupt-and-``--resume`` cycle; every report must be
  **byte-identical** to the serial reference (hard assertion, the
  engine's acceptance criterion), with wall-clock cells/second reported
  for context (not gated — host-dependent).
* ``composite_rebuild`` — the incremental :meth:`CompositeGranuleMap.
  rebuild_targets` path the grid engine uses across ``target_fraction``
  points, measured as groups/second against the cold full build it
  replaces.  Gated at the repo-wide 2x regression limit via
  ``BENCH_grid.baseline.json``.
* ``shm_transfer`` — written by :mod:`benchmarks.test_shm_transfer`.

``BENCH_QUICK=1`` shrinks the workload for CI.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.core.enablement import CompositeGranuleMap
from repro.core.granule import GranuleSet
from repro.core.mapping import ReverseIndirectMapping
from repro.sweep import (
    GridAxis,
    GridSpec,
    SweepSpec,
    materialize_maps,
    run_grid,
)

QUICK = os.environ.get("BENCH_QUICK", "") not in ("", "0")

#: Workload size per cell and rebuild-bench dimensions.
N = 64 if QUICK else 256
REBUILD_N = 20_000 if QUICK else 100_000
GROUP_SIZE = 8
POOL_SIZES = (1, 2, 4)


def _grid() -> GridSpec:
    base = SweepSpec(
        "reverse-indirect",
        replications=2,
        seed=7,
        sim_workers=4,
        params={"n": N, "fan_in": 2},
    )
    return GridSpec(
        base=base,
        axes=(
            GridAxis("sim_workers", (2, 4)),
            GridAxis("overlap", (True, False)),
        ),
    )


def bench_grid_sweep(tmp_dir: Path) -> dict:
    grid = _grid()
    maps = materialize_maps(grid)
    timings: dict[str, float] = {}
    reports: dict[str, str] = {}
    for workers in POOL_SIZES:
        t0 = time.perf_counter()
        outcome = run_grid(grid, workers=workers, shared_maps=maps)
        timings[str(workers)] = time.perf_counter() - t0
        reports[str(workers)] = outcome.report.to_json()

    reference = reports["1"]
    for workers, text in reports.items():
        assert text == reference, f"pool size {workers} changed the report bytes"

    # interrupt-and-resume: journal a full run, drop the tail, resume
    manifest = tmp_dir / "grid-bench.jsonl"
    run_grid(grid, workers=1, shared_maps=maps, manifest_path=manifest)
    lines = manifest.read_text().splitlines(keepends=True)
    manifest.write_text("".join(lines[: 1 + grid.n_cells // 2]))
    resumed = run_grid(
        grid, workers=1, shared_maps=maps, manifest_path=manifest, resume=True
    )
    assert resumed.report.to_json() == reference, "resume changed the report bytes"
    assert resumed.resumed == grid.n_cells // 2

    return {
        "cells": grid.n_cells,
        "byte_identical_pool_sizes": list(POOL_SIZES),
        "byte_identical_resume": True,
        "resumed_cells": resumed.resumed,
        "seconds_by_pool_size": timings,
        "cells_per_second_serial": grid.n_cells / timings["1"],
    }


def bench_composite_rebuild() -> dict:
    """Incremental suffix rebuild vs the cold build it replaces."""
    n = REBUILD_N
    mapping = ReverseIndirectMapping("IMAP", fan_in=2)
    maps = {"IMAP": np.random.default_rng(3).integers(0, n, size=(2, n))}
    full = CompositeGranuleMap.build(mapping, n, n, maps, group_size=GROUP_SIZE)

    fractions = (0.25, 0.5, 0.75, 1.0)
    targets = [GranuleSet.universe(n).take(max(1, int(n * f)))[0] for f in fractions]

    t0 = time.perf_counter()
    rebuilt_groups = 0
    total_groups = 0
    for target in targets:
        out = full.rebuild_targets(target)
        rebuilt_groups += out.rebuilt_groups
        total_groups += out.n_groups
    incremental_seconds = time.perf_counter() - t0

    t1 = time.perf_counter()
    for target in targets:
        CompositeGranuleMap.build(
            mapping, n, n, maps, group_size=GROUP_SIZE, target=target
        )
    cold_seconds = time.perf_counter() - t1

    return {
        "n": n,
        "group_size": GROUP_SIZE,
        "target_fractions": list(fractions),
        "groups_total": total_groups,
        "groups_recomputed": rebuilt_groups,
        "incremental_seconds": incremental_seconds,
        "cold_seconds": cold_seconds,
        "speedup_vs_cold": cold_seconds / incremental_seconds
        if incremental_seconds > 0
        else 0.0,
        "groups_per_second": total_groups / incremental_seconds
        if incremental_seconds > 0
        else 0.0,
    }


def write_report(sections: dict, path: str | Path = "BENCH_grid.json") -> None:
    """Merge sections into the shared grid bench report."""
    path = Path(path)
    report = json.loads(path.read_text(encoding="utf-8")) if path.exists() else {}
    report["quick"] = QUICK
    report.update(sections)
    path.write_text(json.dumps(report, indent=2, sort_keys=True), encoding="utf-8")


def test_grid_sweep(tmp_path):
    sweep = bench_grid_sweep(tmp_path)
    rebuild = bench_composite_rebuild()
    write_report({"grid_sweep": sweep, "composite_rebuild": rebuild})
    # prefix targets share their whole aligned prefix with the full build;
    # the incremental path must recompute only ragged boundary groups
    assert rebuild["groups_recomputed"] <= len(rebuild["target_fractions"])
    print(json.dumps({"grid_sweep": sweep, "composite_rebuild": rebuild}, indent=2))


if __name__ == "__main__":
    import tempfile

    with tempfile.TemporaryDirectory() as d:
        out = {
            "grid_sweep": bench_grid_sweep(Path(d)),
            "composite_rebuild": bench_composite_rebuild(),
        }
    write_report(out)
    print(json.dumps(out, indent=2, sort_keys=True))
