"""Zero-copy data-plane benchmark — descriptor shipping vs array pickling.

The tentpole claim of the shared-memory plane: dispatching a grid cell to
a pool worker costs O(1) pickle bytes instead of O(map size).  This bench
measures the *actual* submitted payloads — the ``(base spec, chunk,
maps payload, ...)`` argument tuple exactly as ``run_grid`` submits it —
for a reverse-indirect workload whose concrete selection map holds over
a million entries, both inline (arrays ride the pickle) and through
:class:`~repro.sweep.shm.SharedMapStore` descriptors.

Gate: the descriptor payload must be at least **10x** smaller.  In
practice it is ~10,000x (an 8 MiB map against a ~100-byte descriptor);
the generous limit keeps the gate meaningful if the task tuple grows.

Also measured (reported, not gated): segment create/attach wall time and
copy throughput.  ``BENCH_QUICK`` does not shrink the map — the ≥1M-entry
size is part of the acceptance criterion and the bench runs in well under
a second.  Writes the ``shm_transfer`` section of ``BENCH_grid.json``.
"""

from __future__ import annotations

import json
import os
import pickle
import time
from pathlib import Path

import numpy as np

from repro.sweep import SweepSpec
from repro.sweep.shm import SharedMapStore

QUICK = os.environ.get("BENCH_QUICK", "") not in ("", "0")

#: >= 1M map entries: fan_in 4 over 262,144 successor granules.
FAN_IN = 4
N = 262_144
MIN_BYTES_RATIO = 10.0


def _chunk_args(maps_payload) -> tuple:
    """The argument tuple ``run_grid`` submits for one chunk of cells."""
    base = SweepSpec(
        "reverse-indirect", replications=2, seed=7, params={"n": N, "fan_in": FAN_IN}
    )
    chunk = [(i, {"sim_workers": 4}, i % 2) for i in range(4)]
    return (base.to_dict(), chunk, maps_payload, True, False, 0)


def bench_shm_transfer() -> dict:
    maps = {"IMAP": np.random.default_rng(0).integers(0, N, size=(FAN_IN, N))}
    entries = int(maps["IMAP"].size)
    assert entries >= 1_000_000

    inline_bytes = len(pickle.dumps(_chunk_args(maps)))

    t0 = time.perf_counter()
    with SharedMapStore.create(maps) as store:
        create_seconds = time.perf_counter() - t0
        descriptor_bytes = len(pickle.dumps(_chunk_args(store.descriptors())))
        t1 = time.perf_counter()
        attached = SharedMapStore.attach(store.descriptors())
        attach_seconds = time.perf_counter() - t1
        try:
            np.testing.assert_array_equal(attached["IMAP"], maps["IMAP"])
        finally:
            attached.close()
        nbytes = store.nbytes()

    return {
        "map_entries": entries,
        "map_bytes": nbytes,
        "inline_pickle_bytes": inline_bytes,
        "descriptor_pickle_bytes": descriptor_bytes,
        "bytes_ratio": inline_bytes / descriptor_bytes,
        "create_seconds": create_seconds,
        "attach_seconds": attach_seconds,
        "create_bytes_per_second": nbytes / create_seconds if create_seconds > 0 else 0.0,
    }


def write_report(section: dict, path: str | Path = "BENCH_grid.json") -> None:
    """Merge one section into the shared grid bench report."""
    path = Path(path)
    report = json.loads(path.read_text(encoding="utf-8")) if path.exists() else {}
    report["quick"] = QUICK
    report["shm_transfer"] = section
    path.write_text(json.dumps(report, indent=2, sort_keys=True), encoding="utf-8")


def test_shm_transfer():
    results = bench_shm_transfer()
    write_report(results)
    assert results["bytes_ratio"] >= MIN_BYTES_RATIO, (
        f"descriptor payload only {results['bytes_ratio']:.1f}x smaller than "
        f"inline arrays (need >= {MIN_BYTES_RATIO}x)"
    )
    print(json.dumps(results, indent=2, sort_keys=True))


if __name__ == "__main__":
    out = bench_shm_transfer()
    write_report(out)
    print(json.dumps(out, indent=2, sort_keys=True))
