"""Fail CI when a gated benchmark regresses >2x against its committed baseline.

Usage::

    python benchmarks/check_bench_regression.py BENCH_core.json \
        [benchmarks/BENCH_core.baseline.json]
    python benchmarks/check_bench_regression.py BENCH_faults.json
    python benchmarks/check_bench_regression.py BENCH_grid.json
    python benchmarks/check_bench_regression.py BENCH_profile.json
    python benchmarks/check_bench_regression.py BENCH_lint.json

One checker, five suites — ``core``, ``faults``, ``grid``, ``profile``,
``lint`` — inferred
from the current report's filename (``BENCH_<suite>.json``); the baseline
defaults to ``benchmarks/BENCH_<suite>.baseline.json``.  Each suite gates
its *throughput* metrics (higher is better): a metric fails when it drops
below half the baseline value — generous enough to ride out shared-runner
noise, tight enough to catch an accidental re-quadratization of a hot
path.

The ``grid`` suite additionally gates ``shm_transfer.bytes_ratio``: the
pickled-payload reduction of descriptor shipping over inline arrays is a
deterministic byte count, so any drop below half the committed ratio
means the task tuple started carrying O(map size) data again.

Ratio metrics (``speedup_vs_*``, overhead fractions) and wall-clock sweep
timings are reported by the benches but not baseline-gated here: they
compare two measurements taken on the same run, so they are already
noise-normalized where it matters, and wall clock depends on how loaded
the runner is.

Two **absolute** gates ride on the core suite.  ``sweep_scaling.speedup``:
the warm-pool parallel sweep must beat serial by the core-aware floor from
:func:`sweep_scaling_floor` — 1.5x on a >=4-core runner, proportionally
less on narrower machines, and "within 15% of serial" on a single core,
where real speedup is physically impossible but pool overhead is not.
``simulate_throughput``: the slotted fast path must beat the closure
reference by >= 1.3x (always), and the compiled extension by >= 2x when
the report was produced by a compiled build.  Both print the usable core
count so a gate trip on a throttled runner is explicable from the log.
"""

from __future__ import annotations

import json
import os
import re
import sys
from pathlib import Path

#: suite -> (bench, metric) pairs gated at >2x regression; higher is better.
SUITES: dict[str, tuple[tuple[str, str], ...]] = {
    "core": (
        ("enablement_notify", "granules_per_second"),
        ("composite_build", "groups_per_second"),
        ("granule_algebra", "union_all_sets_per_second"),
        ("granule_algebra", "or_ranges_per_second"),
        ("event_queue", "events_per_second"),
        ("simulate_throughput", "events_per_second"),
        ("simulate_throughput", "events_per_second_pure"),
    ),
    "faults": (
        ("enablement_notify", "granules_per_second"),
    ),
    "grid": (
        ("composite_rebuild", "groups_per_second"),
        ("shm_transfer", "bytes_ratio"),
    ),
    "profile": (
        ("pool_attribution", "replications_per_second"),
        ("waterfall", "intervals_per_second"),
    ),
    "lint": (
        ("hb_build", "phases_per_second"),
        ("hb_build", "queries_per_second"),
    ),
}

MAX_REGRESSION = 2.0


def sweep_scaling_floor(available_cores: int) -> float:
    """Minimum acceptable ``sweep_scaling.speedup`` for a core count.

    The acceptance bar is an absolute **speedup > 1.5 at 4 workers** — but
    only where the hardware can express it.  On a 4-core (or wider) runner
    the full bar applies; with 2-3 usable cores it scales proportionally;
    a 1-core runner cannot beat serial at all, so the floor there only
    asserts that pool overhead stays small (warm pools + batching keep a
    1-core parallel run within ~15% of serial — the historical cold-pool
    regime sat near 0.55 and fails this gate).
    """
    if available_cores >= 4:
        return 1.5
    if available_cores >= 2:
        return max(0.85, 1.5 * available_cores / 4)
    return 0.85


def check_sweep_scaling(current: dict, baseline: dict) -> list[str]:
    """Absolute-floor gate on the warm-pool sweep speedup (core suite)."""
    bench = current.get("sweep_scaling")
    if bench is None:
        return ["sweep_scaling: missing from current report"]
    try:
        speedup = float(bench["speedup"])
        cores = int(bench["available_cores"])
    except KeyError as exc:
        return [f"sweep_scaling: missing key {exc}"]
    base_cores = (baseline.get("sweep_scaling") or {}).get("available_cores", "?")
    floor = sweep_scaling_floor(cores)
    status = "FAIL" if speedup < floor else "ok"
    print(
        f"[{status:>4}] core:sweep_scaling.speedup: "
        f"current={speedup:.2f} floor={floor:.2f} "
        f"(absolute gate; available_cores: current={cores}, baseline={base_cores})"
    )
    if speedup < floor:
        return [
            f"sweep_scaling.speedup {speedup:.2f} below the {floor:.2f} floor "
            f"for {cores} usable core(s) (baseline recorded {base_cores})"
        ]
    return []


#: absolute floors for the simulation fast path (ISSUE 10 acceptance):
#: the restructured pure-python dispatch layer must beat the closure
#: reference by >= 1.3x, the compiled extension by >= 2x.  Both ratios
#: divide two runs from the same process, so no core-count scaling is
#: needed — a slow runner slows numerator and denominator alike.
FASTPATH_SPEEDUP_FLOOR = 1.3
COMPILED_SPEEDUP_FLOOR = 2.0


def check_simulate_throughput(current: dict, baseline: dict) -> list[str]:
    """Absolute-floor gates on the simulation fast-path speedups."""
    bench = current.get("simulate_throughput")
    if bench is None:
        return ["simulate_throughput: missing from current report"]
    cores = os.cpu_count() or 1
    base_path = (baseline.get("simulate_throughput") or {}).get("sim_path", "?")
    failures: list[str] = []

    gates = [("fastpath_speedup", FASTPATH_SPEEDUP_FLOOR, True)]
    # the compiled gate applies only when this run actually compiled
    gates.append(
        ("compiled_speedup", COMPILED_SPEEDUP_FLOOR, bench.get("sim_path") == "compiled")
    )
    for metric, floor, required in gates:
        value = bench.get(metric)
        if not required:
            if value is None:
                print(
                    f"[skip] core:simulate_throughput.{metric}: extension not "
                    f"built (sim_path={bench.get('sim_path')!r}, baseline "
                    f"sim_path={base_path!r}, available_cores={cores})"
                )
            continue
        if value is None:
            failures.append(f"simulate_throughput.{metric}: missing from report")
            continue
        value = float(value)
        status = "FAIL" if value < floor else "ok"
        print(
            f"[{status:>4}] core:simulate_throughput.{metric}: "
            f"current={value:.2f} floor={floor:.2f} "
            f"(absolute gate, same-process ratio; available_cores={cores}, "
            f"sim_path={bench.get('sim_path')!r})"
        )
        if value < floor:
            failures.append(
                f"simulate_throughput.{metric} {value:.2f} below the "
                f"{floor:.2f} floor (available_cores={cores})"
            )
    return failures


def infer_suite(current_path: Path) -> str:
    """``BENCH_<suite>.json`` -> suite name (default: core)."""
    m = re.match(r"BENCH_([a-z]+)", current_path.name)
    suite = m.group(1) if m else "core"
    if suite not in SUITES:
        raise SystemExit(
            f"unknown benchmark suite {suite!r} (from {current_path.name}); "
            f"expected one of {sorted(SUITES)}"
        )
    return suite


def check(current: dict, baseline: dict, suite: str = "core") -> list[str]:
    """Return a list of failure messages (empty means the gate passes)."""
    failures: list[str] = []
    for bench, metric in SUITES[suite]:
        try:
            base = float(baseline[bench][metric])
            cur = float(current[bench][metric])
        except KeyError as exc:
            failures.append(f"{bench}.{metric}: missing key {exc}")
            continue
        ratio = base / cur if cur > 0 else float("inf")
        status = "FAIL" if ratio > MAX_REGRESSION else "ok"
        print(
            f"[{status:>4}] {suite}:{bench}.{metric}: "
            f"baseline={base:,.0f} current={cur:,.0f} "
            f"(regression {ratio:.2f}x, limit {MAX_REGRESSION:.1f}x)"
        )
        if ratio > MAX_REGRESSION:
            failures.append(
                f"{bench}.{metric} regressed {ratio:.2f}x "
                f"(baseline {base:,.0f} -> current {cur:,.0f})"
            )
    return failures


def main(argv: list[str]) -> int:
    here = Path(__file__).resolve().parent
    current_path = Path(argv[1]) if len(argv) > 1 else Path("BENCH_core.json")
    suite = infer_suite(current_path)
    baseline_path = (
        Path(argv[2]) if len(argv) > 2 else here / f"BENCH_{suite}.baseline.json"
    )
    current = json.loads(current_path.read_text(encoding="utf-8"))
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))

    if current.get("quick") != baseline.get("quick"):
        print(
            f"note: quick-mode mismatch (baseline quick={baseline.get('quick')}, "
            f"current quick={current.get('quick')}); throughput gates still apply"
        )

    failures = check(current, baseline, suite)
    if suite == "core":
        failures += check_sweep_scaling(current, baseline)
        failures += check_simulate_throughput(current, baseline)
    if failures:
        print(f"\n{len(failures)} benchmark regression(s) vs {baseline_path}:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print(f"\nall gated {suite} benchmarks within {MAX_REGRESSION:.1f}x of baseline")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
