"""Fail CI when a core fast path regresses >2x against the committed baseline.

Usage::

    python benchmarks/check_bench_regression.py BENCH_core.json \
        [benchmarks/BENCH_core.baseline.json]

Compares the *throughput* metrics (higher is better) of a fresh
``BENCH_core.json`` against ``benchmarks/BENCH_core.baseline.json``.  A
metric fails when it drops below half the baseline value — generous
enough to ride out shared-runner noise, tight enough to catch an
accidental re-quadratization of a hot path.

Ratio metrics (``speedup_vs_*``) and wall-clock sweep timings are
reported but not gated: they compare two measurements taken on the same
run, so they are already noise-normalized where it matters, and sweep
wall clock depends on how loaded the runner happens to be.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

#: (bench, metric) pairs gated at >2x regression; all are higher-is-better.
GATED: tuple[tuple[str, str], ...] = (
    ("enablement_notify", "granules_per_second"),
    ("composite_build", "groups_per_second"),
    ("granule_algebra", "union_all_sets_per_second"),
    ("granule_algebra", "or_ranges_per_second"),
    ("event_queue", "events_per_second"),
)

MAX_REGRESSION = 2.0


def check(current: dict, baseline: dict) -> list[str]:
    """Return a list of failure messages (empty means the gate passes)."""
    failures: list[str] = []
    for bench, metric in GATED:
        try:
            base = float(baseline[bench][metric])
            cur = float(current[bench][metric])
        except KeyError as exc:
            failures.append(f"{bench}.{metric}: missing key {exc}")
            continue
        ratio = base / cur if cur > 0 else float("inf")
        status = "FAIL" if ratio > MAX_REGRESSION else "ok"
        print(
            f"[{status:>4}] {bench}.{metric}: "
            f"baseline={base:,.0f}/s current={cur:,.0f}/s "
            f"(regression {ratio:.2f}x, limit {MAX_REGRESSION:.1f}x)"
        )
        if ratio > MAX_REGRESSION:
            failures.append(
                f"{bench}.{metric} regressed {ratio:.2f}x "
                f"(baseline {base:,.0f}/s -> current {cur:,.0f}/s)"
            )
    return failures


def main(argv: list[str]) -> int:
    here = Path(__file__).resolve().parent
    current_path = Path(argv[1]) if len(argv) > 1 else Path("BENCH_core.json")
    baseline_path = (
        Path(argv[2]) if len(argv) > 2 else here / "BENCH_core.baseline.json"
    )
    current = json.loads(current_path.read_text(encoding="utf-8"))
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))

    if current.get("quick") != baseline.get("quick"):
        print(
            f"note: quick-mode mismatch (baseline quick={baseline.get('quick')}, "
            f"current quick={current.get('quick')}); throughput gates still apply"
        )

    failures = check(current, baseline)
    if failures:
        print(f"\n{len(failures)} benchmark regression(s) vs {baseline_path}:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print(f"\nall gated benchmarks within {MAX_REGRESSION:.1f}x of baseline")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
