"""Fault injection and recovery: plans, injectors, crash recovery, aborts.

The acceptance property throughout: a run that loses processors or
retries transient failures must finish with *exactly* the granule
completions of its fault-free twin — recovery changes the schedule, never
the result.  The seed used for the deterministic fault draws can be
swept from CI via ``REPRO_FAULT_SEED``.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.granule import GranuleSet
from repro.core.mapping import IdentityMapping, ReverseIndirectMapping, UniversalMapping
from repro.core.overlap import OverlapConfig
from repro.core.phase import ConstantCost, PhaseProgram, PhaseSpec
from repro.core.enablement import EnablementEngine
from repro.executive import ExecutiveSimulation, run_program
from repro.faults import (
    FaultInjector,
    FaultPlan,
    PhaseAbortError,
    ProcessorCrash,
    RecoveryPolicy,
    StragglerSlowdown,
    SweepWorkerKill,
    TransientGranuleError,
    WorkerThreadKill,
)
from repro.obs import GranuleRetried, PhaseStalled, ProcessorFailed, Telemetry
from repro.sim.engine import Simulator
from repro.sim.machine import ExecutivePlacement, Machine, ProcessorState
from repro.sim.trace import Trace
from tests.conftest import two_phase_program

#: CI sweeps this to exercise different deterministic fault draws.
FAULT_SEED = int(os.environ.get("REPRO_FAULT_SEED", "0"))


# ------------------------------------------------------------------ plan


class TestFaultPlan:
    def test_validation(self):
        with pytest.raises(ValueError):
            ProcessorCrash(-1, 1.0)
        with pytest.raises(ValueError):
            ProcessorCrash(0, -1.0)
        with pytest.raises(ValueError):
            StragglerSlowdown(0, 0.5)
        with pytest.raises(ValueError):
            TransientGranuleError(1.5)
        with pytest.raises(ValueError):
            WorkerThreadKill(-1)
        with pytest.raises(ValueError):
            SweepWorkerKill(-2)

    def test_views_partition_faults(self):
        plan = FaultPlan(
            seed=7,
            faults=(
                ProcessorCrash(1, 5.0),
                StragglerSlowdown(2, 3.0),
                TransientGranuleError(0.1),
                WorkerThreadKill(0, after_granules=2),
                SweepWorkerKill(3),
            ),
        )
        assert [c.processor for c in plan.crashes] == [1]
        assert [s.factor for s in plan.stragglers] == [3.0]
        assert [t.probability for t in plan.transients] == [0.1]
        assert [k.worker for k in plan.thread_kills] == [0]
        assert [k.replication for k in plan.sweep_kills] == [3]

    def test_serde_roundtrip(self):
        plan = FaultPlan(
            seed=FAULT_SEED,
            faults=(
                ProcessorCrash(1, 5.0),
                StragglerSlowdown(2, 3.0, from_time=1.0),
                TransientGranuleError(0.25, phase="B"),
                WorkerThreadKill(1, after_granules=4),
                SweepWorkerKill(0),
            ),
        )
        again = FaultPlan.from_dict(plan.to_dict())
        assert again == plan

    def test_recovery_backoff_caps(self):
        pol = RecoveryPolicy(backoff_base=0.5, backoff_cap=2.0)
        assert pol.backoff(1) == 0.5
        assert pol.backoff(2) == 1.0
        assert pol.backoff(3) == 2.0
        assert pol.backoff(10) == 2.0  # capped


class TestInjector:
    def test_transient_draw_is_deterministic_and_order_free(self):
        plan = FaultPlan(seed=FAULT_SEED, faults=(TransientGranuleError(0.5),))
        a = FaultInjector(plan)
        b = FaultInjector(plan)
        keys = [("A", 0, lo, lo + 8, att) for lo in range(0, 64, 8) for att in (0, 1)]
        draws_a = [a.task_fails(*k) for k in keys]
        draws_b = [b.task_fails(*k) for k in reversed(keys)]
        assert draws_a == list(reversed(draws_b))
        assert any(draws_a) and not all(draws_a)  # p=0.5 over 16 draws

    def test_transient_phase_filter(self):
        plan = FaultPlan(seed=0, faults=(TransientGranuleError(1.0, phase="B"),))
        inj = FaultInjector(plan)
        assert not inj.task_fails("A", 0, 0, 8, 0)
        assert inj.task_fails("B", 1, 0, 8, 0)

    def test_slowdown_composes_and_respects_from_time(self):
        plan = FaultPlan(
            faults=(
                StragglerSlowdown(0, 2.0, from_time=10.0),
                StragglerSlowdown(0, 3.0),
            )
        )
        inj = FaultInjector(plan)
        assert inj.slowdown(0, 0.0) == 3.0
        assert inj.slowdown(0, 10.0) == 6.0
        assert inj.slowdown(1, 50.0) == 1.0

    def test_thread_kill_lookup(self):
        plan = FaultPlan(faults=(WorkerThreadKill(2, after_granules=5),))
        inj = FaultInjector(plan)
        assert inj.thread_kill_after(2) == 5
        assert inj.thread_kill_after(0) is None

    def test_sweep_kill_lookup(self):
        inj = FaultInjector(FaultPlan(faults=(SweepWorkerKill(1),)))
        assert inj.kills_replication(1)
        assert not inj.kills_replication(0)


# --------------------------------------------------------------- machine


class TestMachineFailure:
    def make(self, n=3, placement=ExecutivePlacement.DEDICATED):
        sim, tr = Simulator(), Trace()
        return sim, tr, Machine(sim, tr, n, placement)

    def test_fail_idle_processor(self):
        sim, tr, m = self.make()
        p = m.processors[0]
        m.fail_processor(p)
        assert p.state is ProcessorState.FAILED
        assert not m.start_task(p, 1.0, lambda p: None)
        assert len(m.live_workers()) == 2
        assert [f.index for f in m.failed_workers()] == [0]

    def test_fail_computing_processor_loses_task(self):
        sim, tr, m = self.make()
        done, lost = [], []
        m.on_task_lost = lambda p: lost.append(p.index)
        p = m.processors[1]
        m.start_task(p, 5.0, lambda p: done.append(p.index), label="t")
        sim.schedule(2.0, lambda: m.fail_processor(p))
        sim.run()
        assert done == []  # completion callback never fires
        assert lost == [1]
        assert p.state is ProcessorState.FAILED

    def test_fail_is_idempotent(self):
        sim, tr, m = self.make()
        lost = []
        m.on_task_lost = lambda p: lost.append(p.index)
        p = m.processors[0]
        m.fail_processor(p)
        m.fail_processor(p)
        assert lost == []  # idle processor: nothing lost, no double hooks
        assert len(m.failed_workers()) == 1

    def test_refuses_to_crash_executive_host(self):
        sim, tr, m = self.make(placement=ExecutivePlacement.SHARED)
        with pytest.raises(ValueError, match="executive"):
            m.fail_processor(m.processors[0])


# -------------------------------------------------- crash recovery (tentpole)


def run_pair(program, n_workers, plan, recovery=None, **kw):
    """Run the same program fault-free and under ``plan``; return both sims."""
    clean = ExecutiveSimulation(program, n_workers, seed=FAULT_SEED, **kw)
    clean.run()
    faulty = ExecutiveSimulation(
        program, n_workers, seed=FAULT_SEED, faults=plan, recovery=recovery, **kw
    )
    faulty.run()
    return clean, faulty


class TestCrashRecovery:
    def test_crash_one_of_p_completes_identically(self):
        """The PR's acceptance criterion: kill 1 of P mid-rundown, finish anyway."""
        program = two_phase_program(IdentityMapping(), n=64)
        plan = FaultPlan(seed=FAULT_SEED, faults=(ProcessorCrash(1, 5.0),))
        telemetry = Telemetry()
        events = []
        telemetry.bus.subscribe(ProcessorFailed, events.append)
        telemetry.bus.subscribe(PhaseStalled, events.append)
        telemetry.bus.subscribe(GranuleRetried, events.append)

        clean = ExecutiveSimulation(program, 4, seed=FAULT_SEED)
        r_clean = clean.run()
        faulty = ExecutiveSimulation(
            program, 4, seed=FAULT_SEED, faults=plan, telemetry=telemetry
        )
        r_faulty = faulty.run()

        # identical completion sets, run by run
        for run_c, run_f in zip(clean.runs, faulty.runs):
            assert run_c.completed == run_f.completed
        assert r_faulty.granules_executed == r_clean.granules_executed == 128
        # losing a worker can only stretch the makespan
        assert r_faulty.makespan >= r_clean.makespan
        assert r_faulty.processor_failures == 1
        assert r_faulty.stalls >= 1
        assert r_faulty.reassignments >= 1
        kinds = {type(e) for e in events}
        assert {ProcessorFailed, PhaseStalled, GranuleRetried} <= kinds

    def test_crash_with_overlap_and_indirect_mapping(self):
        n, fan_in = 48, 3
        program = PhaseProgram.chain(
            [PhaseSpec("A", n, ConstantCost(1.0)), PhaseSpec("B", n, ConstantCost(1.0))],
            [ReverseIndirectMapping("IMAP", fan_in=fan_in)],
            map_generators={"IMAP": lambda rng: rng.integers(0, n, size=(fan_in, n))},
        )
        plan = FaultPlan(seed=FAULT_SEED, faults=(ProcessorCrash(0, 4.0),))
        clean, faulty = run_pair(program, 4, plan)
        for run_c, run_f in zip(clean.runs, faulty.runs):
            assert run_c.completed == run_f.completed

    def test_two_crashes_still_complete(self):
        program = two_phase_program(UniversalMapping(), n=32)
        plan = FaultPlan(
            seed=FAULT_SEED,
            faults=(ProcessorCrash(1, 3.0), ProcessorCrash(2, 6.0)),
        )
        clean, faulty = run_pair(program, 4, plan)
        for run_c, run_f in zip(clean.runs, faulty.runs):
            assert run_c.completed == run_f.completed
        assert len(faulty.machine.live_workers()) == 2

    def test_crash_after_completion_is_harmless(self):
        program = two_phase_program(IdentityMapping(), n=16)
        plan = FaultPlan(faults=(ProcessorCrash(1, 1e9),))
        clean, faulty = run_pair(program, 4, plan)
        for run_c, run_f in zip(clean.runs, faulty.runs):
            assert run_c.completed == run_f.completed
        # the pending crash timer must not inflate the clock
        assert faulty.sim.now < 1e9

    def test_armed_empty_plan_changes_nothing(self):
        program = two_phase_program(IdentityMapping(), n=64)
        clean, armed = run_pair(program, 4, FaultPlan())
        assert armed.sim.now == clean.sim.now
        for run_c, run_f in zip(clean.runs, armed.runs):
            assert run_c.completed == run_f.completed

    def test_crash_out_of_range_rejected(self):
        program = two_phase_program(IdentityMapping(), n=16)
        plan = FaultPlan(faults=(ProcessorCrash(99, 1.0),))
        with pytest.raises(ValueError):
            ExecutiveSimulation(program, 4, faults=plan)

    def test_crash_on_shared_executive_host_rejected(self):
        program = two_phase_program(IdentityMapping(), n=16)
        plan = FaultPlan(faults=(ProcessorCrash(0, 1.0),))
        with pytest.raises(ValueError):
            ExecutiveSimulation(
                program, 4, placement=ExecutivePlacement.SHARED, faults=plan
            )


class TestStragglersAndTransients:
    def test_straggler_stretches_makespan_not_results(self):
        program = two_phase_program(IdentityMapping(), n=64)
        plan = FaultPlan(faults=(StragglerSlowdown(0, 4.0),))
        clean, faulty = run_pair(program, 4, plan)
        assert faulty.sim.now > clean.sim.now
        for run_c, run_f in zip(clean.runs, faulty.runs):
            assert run_c.completed == run_f.completed

    def test_transients_are_retried_to_completion(self):
        program = two_phase_program(IdentityMapping(), n=64)
        plan = FaultPlan(
            seed=FAULT_SEED, faults=(TransientGranuleError(0.2),)
        )
        recovery = RecoveryPolicy(max_retries=8, backoff_base=0.05, backoff_cap=0.4)
        clean, faulty = run_pair(program, 4, plan, recovery=recovery)
        r = faulty._result()
        assert r.retries > 0
        for run_c, run_f in zip(clean.runs, faulty.runs):
            assert run_c.completed == run_f.completed

    def test_transient_retry_counts_are_reproducible(self):
        program = two_phase_program(IdentityMapping(), n=64)
        plan = FaultPlan(seed=FAULT_SEED, faults=(TransientGranuleError(0.2),))
        recovery = RecoveryPolicy(max_retries=8, backoff_base=0.05, backoff_cap=0.4)
        runs = []
        for _ in range(2):
            s = ExecutiveSimulation(program, 4, faults=plan, recovery=recovery)
            runs.append(s.run())
        assert runs[0].retries == runs[1].retries
        assert runs[0].makespan == runs[1].makespan


class TestAborts:
    def test_retries_exhausted_aborts_with_report(self):
        program = two_phase_program(IdentityMapping(), n=16)
        plan = FaultPlan(faults=(TransientGranuleError(1.0, phase="A"),))
        recovery = RecoveryPolicy(max_retries=2, backoff_base=0.01, backoff_cap=0.02)
        sim = ExecutiveSimulation(program, 4, faults=plan, recovery=recovery)
        with pytest.raises(PhaseAbortError) as exc:
            sim.run()
        report = exc.value.report
        assert report.reason == "retries_exhausted"
        assert report.phase == "A"
        assert report.retries >= 2
        assert report.missing_granules > 0
        assert report.missing_ranges  # structured, serializable
        data = report.to_dict()
        assert data["reason"] == "retries_exhausted"
        assert "A" in report.summary()

    def test_all_workers_dead_aborts_no_live_workers(self):
        program = two_phase_program(IdentityMapping(), n=64)
        plan = FaultPlan(
            faults=tuple(ProcessorCrash(i, 2.0 + i) for i in range(4)),
        )
        recovery = RecoveryPolicy(watchdog_timeout=3.0)
        sim = ExecutiveSimulation(program, 4, faults=plan, recovery=recovery)
        with pytest.raises(PhaseAbortError) as exc:
            sim.run()
        assert exc.value.report.reason == "no_live_workers"
        assert exc.value.report.processor_failures == 4

    def test_watchdog_disabled_means_no_stall_detection(self):
        # with the watchdog off, a fully-crashed machine just stops making
        # progress; the simulator drains and the generic incomplete-stream
        # check fires instead of a structured PhaseAbortError
        program = two_phase_program(IdentityMapping(), n=16)
        plan = FaultPlan(faults=tuple(ProcessorCrash(i, 1.0) for i in range(2)))
        recovery = RecoveryPolicy(watchdog_timeout=None)
        sim = ExecutiveSimulation(program, 2, faults=plan, recovery=recovery)
        with pytest.raises(RuntimeError, match="incomplete"):
            sim.run()
        assert sim.failure_report is None


# ---------------------------------------------- run_program surface


class TestRunProgramSurface:
    def test_run_program_accepts_fault_plan(self, small_costs):
        program = two_phase_program(IdentityMapping(), n=32)
        plan = FaultPlan(seed=FAULT_SEED, faults=(ProcessorCrash(1, 2.0),))
        r = run_program(
            program, 4, costs=small_costs, faults=plan,
            recovery=RecoveryPolicy(watchdog_timeout=5.0),
        )
        assert r.granules_executed == 64
        assert r.processor_failures == 1

    def test_admission_guard_sees_no_violation_under_retries(self, small_costs):
        """Satellite: retried granules must not trip the static cross-check."""
        from repro.lint import AdmissionGuard

        program = two_phase_program(IdentityMapping(), n=64)
        guard = AdmissionGuard(program)
        plan = FaultPlan(
            seed=FAULT_SEED,
            faults=(TransientGranuleError(0.3), ProcessorCrash(2, 4.0)),
        )
        r = run_program(
            program, 4, config=OverlapConfig(), costs=small_costs,
            faults=plan,
            recovery=RecoveryPolicy(max_retries=10, backoff_base=0.05),
            admission_guard=guard,
        )
        assert guard.checked > 0  # the guard actually ran — and never raised
        assert r.granules_executed == 128


# ------------------------------------------- enablement idempotence


class TestEnablementIdempotence:
    """Satellite: duplicate/replayed completions must be strict no-ops."""

    @staticmethod
    def build(n=24, fan_in=3, seed=0):
        import numpy as np

        rng = np.random.default_rng(seed)
        mapping = ReverseIndirectMapping("IMAP", fan_in=fan_in)
        maps = {"IMAP": rng.integers(0, n, size=(fan_in, n))}
        return EnablementEngine(mapping, n, n, maps=maps)

    @settings(max_examples=50, deadline=None)
    @given(data=st.data())
    def test_replayed_completions_are_no_ops(self, data):
        n = 24
        order = data.draw(st.permutations(range(n)))
        # interleave replays of already-delivered granules
        replay_at = data.draw(
            st.lists(st.integers(min_value=1, max_value=n - 1), max_size=8)
        )
        ref = self.build(n)
        dut = self.build(n)
        delivered: list[int] = []
        enabled_total = GranuleSet.empty()
        for i, g in enumerate(order):
            delta = GranuleSet.from_ids([g])
            assert ref.notify(delta) == dut.notify(delta)
            delivered.append(g)
            for r in replay_at:
                if r == i and delivered:
                    replay = GranuleSet.from_ids(delivered[: r + 1])
                    got = dut.notify(replay)
                    assert not got, "replayed completions re-enabled granules"
        assert dut.enabled == ref.enabled
        assert dut.completed == ref.completed
        enabled_total = dut.enabled
        assert enabled_total == GranuleSet.universe(n)

    @settings(max_examples=50, deadline=None)
    @given(data=st.data())
    def test_overlapping_deltas_never_double_enable(self, data):
        n = 24
        ref = self.build(n)
        dut = self.build(n)
        chunks = data.draw(
            st.lists(
                st.tuples(
                    st.integers(min_value=0, max_value=n - 1),
                    st.integers(min_value=1, max_value=8),
                ),
                min_size=1,
                max_size=16,
            )
        )
        seen = GranuleSet.empty()
        returned: list[GranuleSet] = []
        for lo, width in chunks:
            delta = GranuleSet.from_ranges([(lo, min(lo + width, n))])
            fresh = delta - seen
            seen = seen | delta
            got_dut = dut.notify(delta)
            got_ref = ref.notify(fresh) if fresh else GranuleSet.empty()
            assert got_dut == got_ref
            returned.append(got_dut)
        # no successor granule is ever announced twice
        total = 0
        for s in returned:
            total += len(s)
        assert total == len(GranuleSet.union_all(returned) if returned else GranuleSet.empty())


# ------------------------------------------------- threaded runtime


class TestThreadedFaults:
    """Worker kills and transients in the real (host-thread) runtime."""

    def test_killed_workers_do_not_corrupt_results(self):
        import numpy as np

        from repro.runtime import run_fragment_threaded
        from repro.workloads.fragments import identity_fragment

        plan = FaultPlan(
            seed=FAULT_SEED,
            faults=(WorkerThreadKill(0, after_granules=3), WorkerThreadKill(2)),
        )
        produced, expected = run_fragment_threaded(
            identity_fragment(256), n_workers=4, seed=2, fault_plan=plan
        )
        for key, val in expected.items():
            assert np.allclose(produced[key], val)

    def test_transient_kernel_errors_are_retried(self):
        import numpy as np

        from repro.runtime import run_fragment_threaded
        from repro.workloads.fragments import universal_fragment

        telemetry = Telemetry()
        retried = []
        telemetry.bus.subscribe(GranuleRetried, retried.append)
        plan = FaultPlan(seed=FAULT_SEED, faults=(TransientGranuleError(0.1),))
        produced, expected = run_fragment_threaded(
            universal_fragment(200), n_workers=4, seed=3,
            fault_plan=plan, max_retries=20, telemetry=telemetry,
        )
        for key, val in expected.items():
            assert np.allclose(produced[key], val)
        assert retried  # transients actually fired and were retried

    def test_transient_exhaustion_raises(self):
        from repro.runtime import run_fragment_threaded
        from repro.workloads.fragments import identity_fragment

        plan = FaultPlan(faults=(TransientGranuleError(1.0),))
        with pytest.raises(RuntimeError, match="failed 3 times"):
            run_fragment_threaded(
                identity_fragment(64), n_workers=2, fault_plan=plan, max_retries=2
            )

    def test_all_workers_dead_raises_instead_of_hanging(self):
        from repro.runtime import run_fragment_threaded
        from repro.workloads.fragments import identity_fragment

        plan = FaultPlan(
            faults=tuple(WorkerThreadKill(i, after_granules=1) for i in range(3))
        )
        with pytest.raises(RuntimeError, match="workers alive"):
            run_fragment_threaded(
                identity_fragment(256), n_workers=3, fault_plan=plan, join_timeout=30.0
            )
