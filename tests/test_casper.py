"""Tests for the synthetic CASPER suite — the paper's census, exactly."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.core.classifier import classify_program
from repro.core.mapping import MappingKind
from repro.core.overlap import OverlapConfig
from repro.executive import ExecutiveCosts, TaskSizer, run_program
from repro.workloads.casper import (
    CASPER_KIND_SEQUENCE,
    CASPER_LINE_WEIGHTS,
    casper_suite,
)


class TestCensusNumbers:
    """Every number the paper reports about PAX/CASPER."""

    def setup_method(self):
        self.census = classify_program(casper_suite(), wrap=True)

    def test_22_phases(self):
        assert self.census.n_pairs == 22
        assert len(CASPER_KIND_SEQUENCE) == 22

    def test_1188_lines(self):
        assert self.census.total_lines == 1188
        assert sum(CASPER_LINE_WEIGHTS) == 1188

    def test_universal_6_of_22_266_lines(self):
        assert self.census.phase_counts[MappingKind.UNIVERSAL] == 6
        assert self.census.line_counts[MappingKind.UNIVERSAL] == 266
        assert self.census.phase_fraction(MappingKind.UNIVERSAL) == pytest.approx(0.27, abs=0.005)
        assert self.census.line_fraction(MappingKind.UNIVERSAL) == pytest.approx(0.22, abs=0.005)

    def test_identity_9_of_22_551_lines(self):
        assert self.census.phase_counts[MappingKind.IDENTITY] == 9
        assert self.census.line_counts[MappingKind.IDENTITY] == 551
        assert self.census.phase_fraction(MappingKind.IDENTITY) == pytest.approx(0.41, abs=0.005)
        assert self.census.line_fraction(MappingKind.IDENTITY) == pytest.approx(0.46, abs=0.005)

    def test_null_4_of_22_262_lines(self):
        assert self.census.phase_counts[MappingKind.NULL] == 4
        assert self.census.line_counts[MappingKind.NULL] == 262
        assert self.census.phase_fraction(MappingKind.NULL) == pytest.approx(0.18, abs=0.005)
        assert self.census.line_fraction(MappingKind.NULL) == pytest.approx(0.22, abs=0.005)

    def test_reverse_2_of_22_78_lines(self):
        assert self.census.phase_counts[MappingKind.REVERSE_INDIRECT] == 2
        assert self.census.line_counts[MappingKind.REVERSE_INDIRECT] == 78
        assert self.census.phase_fraction(MappingKind.REVERSE_INDIRECT) == pytest.approx(0.09, abs=0.005)
        assert self.census.line_fraction(MappingKind.REVERSE_INDIRECT) == pytest.approx(0.07, abs=0.01)

    def test_forward_1_of_22_31_lines(self):
        assert self.census.phase_counts[MappingKind.FORWARD_INDIRECT] == 1
        assert self.census.line_counts[MappingKind.FORWARD_INDIRECT] == 31
        assert self.census.phase_fraction(MappingKind.FORWARD_INDIRECT) == pytest.approx(0.05, abs=0.005)

    def test_easily_overlapped_68_percent(self):
        assert self.census.easily_overlapped_phase_fraction() == pytest.approx(0.682, abs=0.001)
        assert self.census.easily_overlapped_line_fraction() == pytest.approx(0.688, abs=0.001)

    def test_amenable_with_extended_effort(self):
        # all non-null kinds: 18/22 ≈ 82 %.  The paper claims > 90 % when
        # the serial decisions behind nulls are restructured; our census
        # reports the as-coded figure.
        assert self.census.amenable_phase_fraction() == pytest.approx(18 / 22)

    def test_census_from_footprints_not_labels(self):
        # the kinds come from classification of declared array accesses
        got = Counter(c.kind for c in self.census.classifications)
        want = Counter(CASPER_KIND_SEQUENCE)
        assert got == want


class TestSuiteConstruction:
    def test_granule_scale(self):
        small = casper_suite(granule_scale=0.5)
        base = casper_suite()
        assert small.total_granules() < base.total_granules()

    def test_custom_granules_validated(self):
        with pytest.raises(ValueError):
            casper_suite(granules=[10, 20])

    def test_serial_actions_present_for_null_pairs(self):
        from repro.core.phase import SerialAction

        prog = casper_suite(serial_cost=3.0)
        serials = [s for s in prog.schedule if isinstance(s, SerialAction)]
        # 3 interior null pairs + 1 wrap marker
        assert len(serials) == 4
        assert all(s.duration == 3.0 for s in serials)

    def test_map_generators_registered(self):
        prog = casper_suite()
        reverse_maps = [k for k in prog.map_generators if k.startswith("RMAP")]
        forward_maps = [k for k in prog.map_generators if k.startswith("FMAP")]
        assert len(reverse_maps) == 2
        assert len(forward_maps) == 1


class TestSuiteExecution:
    def test_runs_both_ways_and_overlap_helps(self):
        prog = casper_suite(granule_scale=0.5)
        costs = ExecutiveCosts.pax_like()
        rb = run_program(prog, 8, config=OverlapConfig.barrier(), costs=costs,
                         sizer=TaskSizer(3.0), seed=9)
        ro = run_program(prog, 8, config=OverlapConfig(), costs=costs,
                         sizer=TaskSizer(3.0), seed=9)
        assert rb.granules_executed == ro.granules_executed == prog.total_granules()
        assert ro.makespan < rb.makespan
        assert ro.utilization > rb.utilization

    def test_comp_mgmt_ratio_in_pax_neighbourhood(self):
        prog = casper_suite(granule_scale=0.5)
        r = run_program(prog, 8, config=OverlapConfig.barrier(),
                        costs=ExecutiveCosts.pax_like(ratio=200.0),
                        sizer=TaskSizer(3.0), seed=9)
        # the paper reports "something in the neighborhood of 200"
        assert 50 <= r.comp_mgmt_ratio <= 1000
