"""Tests for the observability subsystem (repro.obs)."""

from __future__ import annotations

import json

import pytest

from repro.core.mapping import IdentityMapping, NullMapping
from repro.core.overlap import (
    REASON_ADMITTED,
    REASON_BARRIER_POLICY,
    REASON_NULL_MAPPING,
    REASON_SERIAL_ACTION,
    REASON_UNSAFE,
    OverlapConfig,
    OverlapPolicy,
    admission_decision,
)
from repro.executive import run_program
from repro.obs import (
    EventBus,
    MetricsRegistry,
    NullEventBus,
    ObsEvent,
    PhaseEnded,
    PhaseStarted,
    QueueDepthChanged,
    Span,
    SpanRecorder,
    Telemetry,
    WorkerIdle,
    chrome_trace_events,
    chrome_trace_from_trace,
    export_chrome_trace,
    export_jsonl,
    record_rundown_metrics,
    render_snapshot,
    spans_from_trace,
)
from repro.obs.spans import load_jsonl
from repro.sim.trace import Interval, Trace
from tests.conftest import two_phase_program


class TestEventBus:
    def test_delivers_to_type_subscribers(self):
        bus = EventBus()
        got = []
        bus.subscribe(PhaseStarted, got.append)
        bus.publish(PhaseStarted(1.0, "A", 0))
        bus.publish(PhaseEnded(2.0, "A", 0))  # filtered out
        assert [e.phase for e in got] == ["A"]

    def test_none_subscribes_to_everything(self):
        bus = EventBus()
        got = []
        bus.subscribe(None, got.append)
        bus.publish(PhaseStarted(1.0, "A", 0))
        bus.publish(QueueDepthChanged(1.5, 3))
        assert len(got) == 2

    def test_global_subscription_order(self):
        """Handlers fire in subscription order, regardless of filter type."""
        bus = EventBus()
        order = []
        bus.subscribe(None, lambda e: order.append("all-first"))
        bus.subscribe(PhaseStarted, lambda e: order.append("typed"))
        bus.subscribe(None, lambda e: order.append("all-last"))
        bus.publish(PhaseStarted(0.0, "A", 0))
        assert order == ["all-first", "typed", "all-last"]

    def test_unsubscribe(self):
        bus = EventBus()
        got = []
        sub = bus.subscribe(PhaseStarted, got.append)
        bus.publish(PhaseStarted(0.0, "A", 0))
        sub.unsubscribe()
        bus.publish(PhaseStarted(1.0, "B", 1))
        assert [e.phase for e in got] == ["A"]
        assert len(bus) == 0

    def test_events_published_counts(self):
        bus = EventBus()
        bus.publish(PhaseStarted(0.0, "A", 0))
        bus.publish(PhaseEnded(1.0, "A", 0))
        assert bus.events_published == 2

    def test_rejects_non_event_subscription(self):
        with pytest.raises(TypeError):
            EventBus().subscribe(int, lambda e: None)

    def test_handler_may_subscribe_during_publish(self):
        bus = EventBus()
        got = []

        def first(e):
            bus.subscribe(None, got.append)

        bus.subscribe(PhaseStarted, first)
        bus.publish(PhaseStarted(0.0, "A", 0))  # new sub sees later events only
        assert got == []
        bus.publish(PhaseEnded(1.0, "A", 0))
        assert len(got) == 1

    def test_null_bus_drops_everything(self):
        bus = NullEventBus()
        got = []
        bus.subscribe(None, got.append)
        bus.publish(PhaseStarted(0.0, "A", 0))
        assert got == []

    def test_event_is_frozen(self):
        e = WorkerIdle(1.0, "P0")
        with pytest.raises(Exception):
            e.time = 2.0  # type: ignore[misc]
        assert isinstance(e, ObsEvent)


class TestMetrics:
    def test_counter_labels_are_independent_series(self):
        m = MetricsRegistry()
        c = m.counter("tasks_total")
        c.inc(phase="A")
        c.inc(2, phase="B")
        assert c.value(phase="A") == 1
        assert c.value(phase="B") == 2
        assert c.total() == 3

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c").inc(-1)

    def test_gauge_moves_both_ways(self):
        g = MetricsRegistry().gauge("depth")
        g.set(5)
        g.dec(2)
        g.inc(1)
        assert g.value() == 4

    def test_histogram_stats_and_buckets(self):
        h = MetricsRegistry().histogram("sizes", buckets=(1, 10, 100))
        for v in (0.5, 5, 50, 500):
            h.observe(v)
        stats = h.stats()
        assert stats["count"] == 4
        assert stats["min"] == 0.5 and stats["max"] == 500
        snap = h.snapshot()["series"][""]
        assert snap["buckets"] == {"le=1": 1, "le=10": 1, "le=100": 1, "le=+Inf": 1}

    def test_registry_get_or_create_and_type_conflict(self):
        m = MetricsRegistry()
        assert m.counter("x") is m.counter("x")
        with pytest.raises(TypeError):
            m.gauge("x")

    def test_snapshot_is_decoupled(self):
        m = MetricsRegistry()
        c = m.counter("x")
        c.inc()
        snap = m.snapshot()
        c.inc(10)
        assert snap["x"]["series"][""] == 1

    def test_reset_clears_series_keeps_registrations(self):
        m = MetricsRegistry()
        c = m.counter("x")
        c.inc(labels="y")
        m.reset()
        assert c.total() == 0
        c.inc()  # the cached handle still works after reset
        assert m.get("x") is c and c.total() == 1

    def test_render_snapshot_lines(self):
        m = MetricsRegistry()
        m.counter("hits").inc(3, route="a")
        m.gauge("empty")
        text = render_snapshot(m.snapshot())
        assert 'hits{route="a"}  3' in text
        assert "empty  (no samples)" in text


class TestSpans:
    def test_span_rejects_inverted(self):
        with pytest.raises(ValueError):
            Span("x", "P0", 2.0, 1.0)

    def test_recorder_context_manager_uses_clock(self):
        t = [0.0]
        rec = SpanRecorder(clock=lambda: t[0])
        with rec.span("work", "P0", phase="A"):
            t[0] = 2.5
        (span,) = rec.spans()
        assert (span.start, span.end) == (0.0, 2.5)
        assert span.args == {"phase": "A"}

    def test_context_manager_without_clock_raises(self):
        rec = SpanRecorder()
        with pytest.raises(RuntimeError):
            with rec.span("x", "P0"):
                pass

    def test_spans_from_trace_uses_labels(self):
        tr = Trace()
        tr.add_interval(Interval("P0", 0.0, 1.0, "compute", "taskA"))
        tr.add_interval(Interval("EXEC", 1.0, 2.0, "mgmt"))
        spans = {s.resource: s for s in spans_from_trace(tr)}
        assert spans["P0"].name == "taskA"  # label wins
        assert spans["EXEC"].name == "mgmt"  # falls back to category
        assert spans["EXEC"].category == "mgmt"

    def test_chrome_events_have_required_fields(self):
        spans = [Span("a", "P0", 0.0, 1.0), Span("b", "P1", 0.5, 2.0)]
        events = chrome_trace_events(spans, instants=[(1.0, "note", "P0", {})])
        for e in events:
            assert {"ph", "ts", "pid", "tid"} <= set(e)
        assert {e["ph"] for e in events} == {"M", "X", "i"}
        x = [e for e in events if e["ph"] == "X"]
        assert x[0]["ts"] == 0.0 and x[0]["dur"] == pytest.approx(1_000_000.0)

    def test_tids_sort_workers_numerically(self):
        spans = [Span("s", r, 0.0, 1.0) for r in ("P10", "P2", "EXEC")]
        events = chrome_trace_events(spans)
        names = {
            e["args"]["name"]: e["tid"] for e in events if e["ph"] == "M"
        }
        assert names["P2"] < names["P10"] < names["EXEC"]

    def test_export_chrome_trace_roundtrip(self, tmp_path):
        path = tmp_path / "trace.json"
        export_chrome_trace([Span("a", "P0", 0.0, 1.0)], path)
        doc = json.loads(path.read_text())
        assert doc["displayTimeUnit"] == "ms"
        assert any(e["ph"] == "X" for e in doc["traceEvents"])

    def test_jsonl_roundtrip(self, tmp_path):
        spans = [Span("a", "P0", 0.0, 1.0, "compute", {"k": 1}), Span("b", "P1", 1.0, 2.0)]
        path = tmp_path / "spans.jsonl"
        export_jsonl(spans, path)
        assert load_jsonl(path) == spans


class TestAdmissionDecision:
    def test_reason_precedence(self):
        d = admission_decision("A", "B", OverlapPolicy.NONE, serial_barrier=True)
        assert d.reason == REASON_BARRIER_POLICY  # policy checked first
        d = admission_decision("A", "B", OverlapPolicy.NEXT_PHASE, serial_barrier=True)
        assert d.reason == REASON_SERIAL_ACTION
        d = admission_decision("A", "B", OverlapPolicy.NEXT_PHASE, mapping_kind=NullMapping().kind)
        assert d.reason == REASON_NULL_MAPPING
        d = admission_decision("A", "B", OverlapPolicy.NEXT_PHASE, safe=False)
        assert d.reason == REASON_UNSAFE

    def test_admitted(self):
        d = admission_decision(
            "A", "B", OverlapPolicy.NEXT_PHASE, mapping_kind=IdentityMapping().kind
        )
        assert d.admitted and d.reason == REASON_ADMITTED
        assert d.mapping_kind == "identity"


class TestTelemetryIntegration:
    def run(self, mapping=None, config=None, telemetry=None):
        program = two_phase_program(mapping or IdentityMapping(), n=32)
        return run_program(program, 4, config=config or OverlapConfig(), telemetry=telemetry)

    def test_overlap_run_counts_admission(self):
        t = Telemetry()
        result = self.run(telemetry=t)
        admitted = t.metrics.get("overlap.admitted_total")
        assert admitted.value(mapping_kind="identity") == 1
        (d,) = result.admission_decisions
        assert d.admitted and (d.predecessor, d.successor) == ("A", "B")

    def test_barrier_run_counts_rejection(self):
        t = Telemetry()
        result = self.run(config=OverlapConfig.barrier(), telemetry=t)
        rejected = t.metrics.get("overlap.rejected_total")
        assert rejected.value(reason=REASON_BARRIER_POLICY) == 1
        (d,) = result.admission_decisions
        assert not d.admitted and d.reason == REASON_BARRIER_POLICY

    def test_null_mapping_rejection_reason(self):
        t = Telemetry()
        result = self.run(mapping=NullMapping(), telemetry=t)
        (d,) = result.admission_decisions
        assert d.reason == REASON_NULL_MAPPING
        assert t.metrics.get("overlap.rejected_total").value(reason=REASON_NULL_MAPPING) == 1

    def test_dispatch_and_completion_balance(self):
        t = Telemetry()
        self.run(telemetry=t)
        m = t.metrics
        assert (
            m.get("scheduler.granules_dispatched_total").total()
            == m.get("scheduler.granules_completed_total").total()
            == 64
        )
        assert m.get("phase.started_total").total() == 2
        assert m.get("phase.ended_total").total() == 2
        assert m.get("sim.events_processed_total").total() > 0

    def test_telemetry_does_not_change_schedule(self):
        bare = self.run()
        observed = self.run(telemetry=Telemetry())
        assert observed.makespan == bare.makespan
        assert observed.utilization == bare.utilization

    def test_record_rundown_metrics_gauges(self):
        t = Telemetry()
        result = self.run(telemetry=t)
        record_rundown_metrics(result, t.metrics)
        idle = t.metrics.get("rundown.idle_seconds")
        series = idle.series()
        assert len(series) == result.n_workers
        assert t.metrics.get("run.makespan").value() == result.makespan
        from repro.metrics import total_rundown_idle

        assert sum(series.values()) == pytest.approx(total_rundown_idle(result))

    def test_chrome_trace_from_run(self):
        result = self.run()
        doc = chrome_trace_from_trace(result.trace)
        for e in doc["traceEvents"]:
            assert {"ph", "ts", "pid", "tid"} <= set(e)
        x_events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(x_events) == sum(1 for _ in result.trace.intervals())

    def test_reset_clears_state(self):
        t = Telemetry()
        self.run(telemetry=t)
        t.spans.add("x", "P0", 0.0, 1.0)
        t.reset()
        assert t.spans.spans() == []
        assert t.metrics.get("scheduler.granules_dispatched_total").total() == 0


class TestThreadedTelemetry:
    def test_threaded_run_records_spans_and_metrics(self):
        from repro.runtime.threaded import run_fragment_threaded
        from repro.workloads.fragments import identity_fragment

        t = Telemetry()
        produced, expected = run_fragment_threaded(
            identity_fragment(16), n_workers=2, telemetry=t
        )
        import numpy as np

        for k in expected:
            assert np.allclose(produced[k], expected[k])
        compute = [s for s in t.spans.spans() if s.category == "compute"]
        assert len(compute) == 32  # 16 granules x 2 phases
        assert {s.resource for s in compute} <= {"W0", "W1"}
        assert t.metrics.get("phase.ended_total").total() == 2
        assert t.metrics.get("scheduler.granules_completed_total").total() == 32
