"""Differential byte-identity: pure vs fastpath vs compiled simulation.

The ISSUE 10 tentpole replaces the scheduler's closure-per-action inner
loop with the slotted dispatch layer (:mod:`repro.executive.hotloop` +
the machine fast variants) and optionally compiles it.  The substitution
property backing it: for any workload, configuration, fault plan and
telemetry setting, the canonical run report — ``result_summary`` plus the
full persisted trace — is **byte-identical** across

* ``fastpath=False`` (the paper-shaped closure reference),
* ``fastpath=True``  (the slotted dispatch layer), and
* the compiled extension, when built (skipped otherwise; CI builds it).

``ComputationDescription`` ids come from a process-global counter, so
every run here resets it — two back-to-back runs of the *same* path
would otherwise differ in ``succ-split:...`` labels.
"""

from __future__ import annotations

import itertools
import json
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import _speed
from repro.core.overlap import OverlapConfig, SplitStrategy
from repro.executive import descriptions
from repro.executive.scheduler import run_program
from repro.executive.splitting import TaskSizer
from repro.faults.plan import (
    FaultPlan,
    ProcessorCrash,
    RecoveryPolicy,
    StragglerSlowdown,
    TransientGranuleError,
)
from repro.executive.extensions import Extensions
from repro.obs.telemetry import Telemetry
from repro.sim.events import EventKind
from repro.sim.machine import ExecutivePlacement, Machine
from repro.sim.engine import Simulator
from repro.sim.persist import trace_to_dict
from repro.sim.trace import Trace
from repro.sweep.runner import build_workload, result_summary, workload_names

COMPILED = _speed.compiled_available()


def _reset_description_ids() -> None:
    descriptions._description_ids = itertools.count(1)


def canonical(result) -> tuple[str, str]:
    """The two byte-exact artifacts a run is judged by."""
    return (
        json.dumps(result_summary(result), sort_keys=True, default=str),
        json.dumps(trace_to_dict(result.trace), sort_keys=True, default=str),
    )


def run_once(workload, fastpath, *, compiled=False, params=None, **kw):
    _reset_description_ids()
    program = build_workload(workload, params)
    return run_program(
        program, kw.pop("workers", 8), fastpath=fastpath, compiled=compiled, **kw
    )


def assert_identical(workload, *, params=None, **kw):
    pure = canonical(run_once(workload, False, params=params, **kw))
    fast = canonical(run_once(workload, True, params=params, **kw))
    assert pure == fast, f"pure vs fastpath diverged on {workload} {kw}"
    if COMPILED:
        comp = canonical(run_once(workload, True, compiled=True, params=params, **kw))
        assert pure == comp, f"pure vs compiled diverged on {workload} {kw}"


# ------------------------------------------------------------------ workloads
class TestAllWorkloads:
    @pytest.mark.parametrize("workload", workload_names())
    def test_byte_identity(self, workload):
        assert_identical(workload, seed=3)


# ------------------------------------------------------------------ configs
CONFIGS = {
    "shared": dict(placement=ExecutivePlacement.SHARED),
    "middle-mgmt": dict(
        placement=ExecutivePlacement.SHARED,
        extensions=Extensions(middle_managers=2),
    ),
    "proximity": dict(extensions=Extensions(data_proximity=True, proximity_scan=4)),
    "lateral": dict(extensions=Extensions(lateral_handoff=True, lateral_cost=0.1)),
    "remote": dict(extensions=Extensions(remote_penalty=1.5)),
    "presplit": dict(config=OverlapConfig(split_strategy=SplitStrategy.PRESPLIT)),
    "successor-task": dict(
        config=OverlapConfig(split_strategy=SplitStrategy.SUCCESSOR_TASK)
    ),
    "barrier": dict(config=OverlapConfig.barrier()),
    "small-tasks": dict(sizer=TaskSizer(tasks_per_processor=8.0)),
}


class TestConfigMatrix:
    @pytest.mark.parametrize("name", sorted(CONFIGS))
    @pytest.mark.parametrize("workload", ["identity", "checkerboard"])
    def test_byte_identity(self, workload, name):
        assert_identical(workload, seed=3, **CONFIGS[name])


# ------------------------------------------------------------------ faults
#: REPRO_FAULT_SEED lets CI fan the fault matrix across extra seeds.
FAULT_SEEDS = [7, 11] + [
    int(s) for s in os.environ.get("REPRO_FAULT_SEED", "").split(",") if s.strip()
]


class TestFaultInjection:
    @pytest.mark.parametrize("fault_seed", FAULT_SEEDS)
    @pytest.mark.parametrize("workload", ["casper", "identity"])
    def test_byte_identity_under_faults(self, workload, fault_seed):
        plan = FaultPlan(
            seed=fault_seed,
            faults=(
                ProcessorCrash(5, 40.0),
                TransientGranuleError(0.05),
                StragglerSlowdown(0.3, 2.5),
            ),
        )
        assert_identical(
            workload,
            seed=3,
            faults=plan,
            recovery=RecoveryPolicy(watchdog_timeout=25.0),
        )

    def test_byte_identity_with_telemetry_and_faults(self):
        plan = FaultPlan(seed=11, faults=(TransientGranuleError(0.05),))
        outs = []
        events = []
        for fastpath in (False, True):
            tel = Telemetry()
            _reset_description_ids()
            result = run_program(
                build_workload("identity"),
                8,
                seed=3,
                fastpath=fastpath,
                faults=plan,
                telemetry=tel,
            )
            outs.append(canonical(result))
            events.append(tel.bus.events_published)
        assert outs[0] == outs[1]
        assert events[0] == events[1], "telemetry event counts must match"


# ------------------------------------------------------------------ sanitizer
class TestSanitizer:
    def test_sanitizer_verdict_and_trace_identical(self):
        from repro.lint import sanitize_result

        reports = []
        for fastpath in (False, True):
            _reset_description_ids()
            program = build_workload("checkerboard")
            result = run_program(program, 8, seed=3, fastpath=fastpath)
            report = sanitize_result(result, program)
            reports.append((report.ok, report.render_text(), canonical(result)))
        assert reports[0] == reports[1]
        assert reports[0][0], "sanitizer must pass on a clean run"


# ------------------------------------------------------------------ hypothesis
@st.composite
def run_config(draw):
    workers = draw(st.integers(1, 12))
    placement = draw(st.sampled_from(list(ExecutivePlacement)))
    mm = draw(st.integers(1, min(3, workers)))
    kw = {
        "workers": workers,
        "seed": draw(st.integers(0, 50)),
        "placement": placement,
        "config": OverlapConfig(split_strategy=draw(st.sampled_from(list(SplitStrategy)))),
        "sizer": TaskSizer(
            tasks_per_processor=draw(st.sampled_from([1.0, 2.0, 4.0, 8.0]))
        ),
        "extensions": Extensions(
            middle_managers=mm,
            lateral_handoff=draw(st.booleans()),
            data_proximity=draw(st.booleans()),
            remote_penalty=draw(st.sampled_from([1.0, 1.5])),
        ),
    }
    if draw(st.booleans()):
        kw["faults"] = FaultPlan(
            seed=draw(st.integers(0, 20)),
            faults=(TransientGranuleError(draw(st.sampled_from([0.02, 0.1]))),),
        )
    return kw


class TestRandomizedConfigs:
    @settings(max_examples=20, deadline=None)
    @given(kw=run_config(), workload=st.sampled_from(["identity", "checkerboard"]))
    def test_byte_identity(self, kw, workload):
        params = {"n": 48} if workload == "identity" else {"grid_side": 24}
        assert_identical(workload, params=params, **kw)


# ------------------------------------------------------------------ sim_path
class TestSimPath:
    def test_sim_path_reported_not_persisted(self):
        result = run_once("identity", True)
        assert result.sim_path == ("compiled" if COMPILED else "fastpath")
        pure = run_once("identity", False)
        assert pure.sim_path == "pure"
        # diagnostic only: canonical artifacts must not carry the path
        for blob in canonical(result):
            assert "sim_path" not in blob

    def test_env_kill_switch_forces_pure_modules(self, monkeypatch):
        monkeypatch.setenv("REPRO_COMPILED", "0")
        core = _speed.resolve(None)
        assert core.compiled is False
        assert _speed.compiled_available() is False

    def test_compiled_false_degrades_silently(self):
        # compiled=True must not raise even when no extension is built
        result = run_once("identity", True, compiled=True)
        fallback = run_once("identity", True, compiled=False)
        assert canonical(result) == canonical(fallback)


# ------------------------------------------------------------------ noop spans
class TestNoopMgmtSpans:
    """The satellite fix: a no-op assign records no span, trace or obs
    records, while a genuine zero-duration job (ExecutiveCosts.free)
    still records everything."""

    @pytest.mark.parametrize("fastpath", [False, True])
    def test_noop_job_records_nothing(self, fastpath):
        trace = Trace()
        machine = Machine(Simulator(), trace, 2, fastpath=fastpath)
        fired = []
        machine.submit_mgmt(
            0.0, lambda: fired.append(True), label="assign:P0", noop=lambda: True
        )
        machine.sim.run()
        assert fired == [True], "on_done must still fire"
        assert machine.mgmt_jobs_done == 1
        assert trace.records == []
        assert list(trace.intervals()) == []

    @pytest.mark.parametrize("fastpath", [False, True])
    def test_zero_duration_genuine_job_still_records(self, fastpath):
        trace = Trace()
        machine = Machine(Simulator(), trace, 2, fastpath=fastpath)
        machine.submit_mgmt(0.0, None, label="assign:P0")
        machine.sim.run()
        kinds = [r.kind for r in trace.records]
        assert kinds == [EventKind.MGMT_START, EventKind.MGMT_END]
        # SHARED placement: one interval on the server, one on its host
        ivs = list(trace.intervals())
        assert sorted(iv.resource for iv in ivs) == ["EXEC", "P0"]
        assert all(iv.duration == 0.0 for iv in ivs)

    def test_drained_queue_assign_leaves_no_span(self):
        """End to end: runs always retire every queued assignment, and
        no zero-length mgmt interval labelled ``assign:*`` survives
        unless it did real work (real work pays ``costs.assign`` > 0)."""
        for fastpath in (False, True):
            _reset_description_ids()
            result = run_program(
                build_workload("identity"), 8, seed=3, fastpath=fastpath
            )
            for iv in result.trace.intervals():
                if iv.category == "mgmt" and iv.label.startswith("assign:"):
                    assert iv.duration > 0.0, (
                        f"phantom zero-length assign span {iv} ({fastpath=})"
                    )


# ------------------------------------------------------------------ compiled
@pytest.mark.skipif(not COMPILED, reason="compiled extension not built")
class TestCompiledBuild:
    def test_extension_modules_are_binary(self):
        core = _speed.resolve(None)
        assert core.compiled
        for mod in (core.engine, core.machine, core.hotloop):
            assert not (mod.__file__ or "").endswith((".py", ".pyc"))

    @pytest.mark.parametrize("workload", workload_names())
    def test_compiled_byte_identity_all_workloads(self, workload):
        pure = canonical(run_once(workload, False, seed=3))
        comp = canonical(run_once(workload, True, compiled=True, seed=3))
        assert pure == comp
