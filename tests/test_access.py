"""Tests for symbolic access patterns and the Bernstein conflict test."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.access import (
    AccessPattern,
    AffineIndex,
    AllIndex,
    ArrayRef,
    ConstIndex,
    MappedIndex,
    conflicts,
)


class TestIndexExprs:
    def test_affine_identity(self):
        idx = AffineIndex(1, 0)
        assert idx.is_identity
        assert idx.elements(7) == frozenset({7})

    def test_affine_stride_offset(self):
        idx = AffineIndex(2, 3)
        assert not idx.is_identity
        assert idx.elements(5) == frozenset({13})

    def test_affine_zero_stride_rejected(self):
        with pytest.raises(ValueError):
            AffineIndex(0, 1)

    def test_const_index(self):
        assert ConstIndex(9).elements(123) == frozenset({9})

    def test_all_index_returns_sentinel(self):
        assert AllIndex().elements(0) is None

    def test_mapped_1d(self):
        maps = {"M": np.array([4, 5, 6])}
        assert MappedIndex("M").elements(1, maps) == frozenset({5})

    def test_mapped_fan_in(self):
        maps = {"M": np.array([[1, 2], [3, 4], [1, 6]])}
        assert MappedIndex("M", fan_in=3).elements(0, maps) == frozenset({1, 3})
        assert MappedIndex("M", fan_in=3).elements(1, maps) == frozenset({2, 4, 6})

    def test_mapped_missing_map_raises(self):
        with pytest.raises(KeyError):
            MappedIndex("M").elements(0, None)
        with pytest.raises(KeyError):
            MappedIndex("M").elements(0, {})

    def test_mapped_shape_validation(self):
        with pytest.raises(ValueError):
            MappedIndex("M", fan_in=2).elements(0, {"M": np.array([1, 2, 3])})
        with pytest.raises(ValueError):
            MappedIndex("M").elements(0, {"M": np.zeros((2, 3), dtype=int)})

    def test_mapped_fan_in_validation(self):
        with pytest.raises(ValueError):
            MappedIndex("M", fan_in=0)


class TestAccessPattern:
    def test_make_coerces_strings(self):
        p = AccessPattern.make(reads=["A"], writes=["B"])
        assert p.reads[0] == ArrayRef("A", AffineIndex())
        assert p.arrays_read() == frozenset({"A"})
        assert p.arrays_written() == frozenset({"B"})

    def test_concrete_merges_same_array(self):
        p = AccessPattern(
            reads=(ArrayRef("A", AffineIndex(1, -1)), ArrayRef("A", AffineIndex(1, 1))),
        )
        reads, writes = p.concrete(5)
        assert reads["A"] == frozenset({4, 6})
        assert writes == {}

    def test_concrete_all_dominates(self):
        p = AccessPattern(reads=(ArrayRef("A", AffineIndex()), ArrayRef("A", AllIndex())))
        reads, _ = p.concrete(3)
        assert reads["A"] is None


class TestConflicts:
    def identity_copy(self, src: str, dst: str) -> AccessPattern:
        return AccessPattern(
            reads=(ArrayRef(src, AffineIndex()),), writes=(ArrayRef(dst, AffineIndex()),)
        )

    def test_same_granule_flow_conflict(self):
        p1 = self.identity_copy("A", "B")
        p2 = self.identity_copy("B", "C")
        assert conflicts(p1, 5, p2, 5)

    def test_distinct_granules_no_conflict(self):
        p1 = self.identity_copy("A", "B")
        p2 = self.identity_copy("B", "C")
        assert not conflicts(p1, 5, p2, 6)

    def test_disjoint_arrays_never_conflict(self):
        p1 = self.identity_copy("A", "B")
        p2 = self.identity_copy("C", "D")
        for i in range(4):
            for j in range(4):
                assert not conflicts(p1, i, p2, j)

    def test_write_write_conflict(self):
        p1 = AccessPattern(writes=(ArrayRef("X", AffineIndex()),))
        p2 = AccessPattern(writes=(ArrayRef("X", AffineIndex()),))
        assert conflicts(p1, 3, p2, 3)
        assert not conflicts(p1, 3, p2, 4)

    def test_anti_dependence_detected(self):
        # p2 writes what p1 reads
        p1 = AccessPattern(reads=(ArrayRef("X", AffineIndex()),))
        p2 = AccessPattern(writes=(ArrayRef("X", AffineIndex()),))
        assert conflicts(p1, 2, p2, 2)

    def test_read_read_never_conflicts(self):
        p1 = AccessPattern(reads=(ArrayRef("X", AllIndex()),))
        p2 = AccessPattern(reads=(ArrayRef("X", AllIndex()),))
        assert not conflicts(p1, 0, p2, 1)

    def test_all_write_conflicts_with_any_read(self):
        p1 = AccessPattern(writes=(ArrayRef("X", AllIndex()),))
        p2 = AccessPattern(reads=(ArrayRef("X", AffineIndex()),))
        assert conflicts(p1, 0, p2, 99)

    def test_mapped_conflict_depends_on_map(self):
        p1 = AccessPattern(writes=(ArrayRef("A", AffineIndex()),))
        p2 = AccessPattern(reads=(ArrayRef("A", MappedIndex("M")),))
        maps = {"M": np.array([3, 7])}
        assert conflicts(p1, 3, p2, 0, maps)
        assert not conflicts(p1, 3, p2, 1, maps)

    def test_stencil_conflict(self):
        writer = AccessPattern(writes=(ArrayRef("u", AffineIndex()),))
        reader = AccessPattern(
            reads=(
                ArrayRef("u", AffineIndex(1, -1)),
                ArrayRef("u", AffineIndex(1, 0)),
                ArrayRef("u", AffineIndex(1, 1)),
            )
        )
        assert conflicts(writer, 4, reader, 5)  # 5 reads u[4]
        assert conflicts(writer, 4, reader, 3)  # 3 reads u[4]
        assert not conflicts(writer, 4, reader, 6)
