"""Tests for enablement counters, composite maps and the engine."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.enablement import CompositeGranuleMap, CompositeGroup, EnablementCounter, EnablementEngine
from repro.core.granule import GranuleSet
from repro.core.mapping import (
    ForwardIndirectMapping,
    IdentityMapping,
    ReverseIndirectMapping,
    SeamMapping,
    UniversalMapping,
)


class TestEnablementCounter:
    def test_counts_down_and_fires_once(self):
        c = EnablementCounter(GranuleSet.from_ids([1, 3, 5]))
        assert c.count == 3
        assert not c.on_complete(GranuleSet.from_ids([1]))
        assert c.count == 2
        assert not c.on_complete(GranuleSet.from_ids([2]))  # irrelevant granule
        assert c.on_complete(GranuleSet.from_ids([3, 5]))
        assert c.fired and c.count == 0
        assert not c.on_complete(GranuleSet.from_ids([1]))  # never fires twice

    def test_empty_requirement_prefired(self):
        c = EnablementCounter(GranuleSet.empty())
        assert c.fired
        assert not c.on_complete(GranuleSet.from_ids([0]))

    def test_required_preserved(self):
        req = GranuleSet.from_ids([2, 4])
        c = EnablementCounter(req)
        c.on_complete(GranuleSet.from_ids([2]))
        assert c.required == req
        assert c.remaining == GranuleSet.from_ids([4])


class TestCompositeGranuleMap:
    def setup_method(self):
        self.maps = {"M": np.array([[0, 1, 2, 3], [1, 2, 3, 0]])}
        self.mapping = ReverseIndirectMapping("M", fan_in=2)

    def test_build_groups_cover_successor_space(self):
        cm = CompositeGranuleMap.build(self.mapping, 4, 4, self.maps, group_size=2)
        assert cm.n_groups == 2
        assert cm.covered == GranuleSet.universe(4)

    def test_group_requirements(self):
        cm = CompositeGranuleMap.build(self.mapping, 4, 4, self.maps, group_size=1)
        assert cm.groups[0].required == GranuleSet.from_ids([0, 1])
        assert cm.groups[2].required == GranuleSet.from_ids([2, 3])

    def test_build_cost_scales_with_entries(self):
        cm = CompositeGranuleMap.build(self.mapping, 4, 4, self.maps, group_size=1)
        assert cm.build_cost(0.5) == 0.5 * cm.total_required()
        with pytest.raises(ValueError):
            cm.build_cost(-1)

    def test_target_subset_restricts_coverage(self):
        target = GranuleSet.from_ranges([(0, 2)])
        cm = CompositeGranuleMap.build(self.mapping, 4, 4, self.maps, group_size=1, target=target)
        assert cm.covered == target

    def test_required_union(self):
        cm = CompositeGranuleMap.build(self.mapping, 4, 4, self.maps, group_size=4)
        assert cm.required_union() == GranuleSet.universe(4)

    def test_overlapping_groups_rejected(self):
        g = GranuleSet.from_ids([0, 1])
        with pytest.raises(ValueError):
            CompositeGranuleMap(
                [CompositeGroup(g, GranuleSet.empty()), CompositeGroup(g, GranuleSet.empty())]
            )

    def test_group_size_validation(self):
        with pytest.raises(ValueError):
            CompositeGranuleMap.build(self.mapping, 4, 4, self.maps, group_size=0)


class TestEnablementEngine:
    def test_universal_initially_enabled(self):
        e = EnablementEngine(UniversalMapping(), 8, 8)
        assert e.initially_enabled() == GranuleSet.universe(8)
        assert not e.notify(GranuleSet.from_ids([0]))  # nothing new

    def test_identity_incremental(self):
        e = EnablementEngine(IdentityMapping(), 8, 8)
        assert not e.initially_enabled()
        assert e.notify(GranuleSet.from_ranges([(0, 3)])) == GranuleSet.from_ranges([(0, 3)])
        assert e.notify(GranuleSet.from_ranges([(3, 5)])) == GranuleSet.from_ranges([(3, 5)])
        # repeating a completion yields nothing new
        assert not e.notify(GranuleSet.from_ranges([(0, 5)]))

    def test_seam_engine(self):
        e = EnablementEngine(SeamMapping((-1, 0, 1)), 6, 6)
        newly = e.notify(GranuleSet.from_ranges([(0, 3)]))
        assert newly == GranuleSet.from_ranges([(0, 2)])
        newly = e.notify(GranuleSet.from_ranges([(3, 6)]))
        assert newly == GranuleSet.from_ranges([(2, 6)])

    def test_reverse_counter_mode(self):
        maps = {"M": np.array([[0, 1], [1, 2]])}
        e = EnablementEngine(ReverseIndirectMapping("M", fan_in=2), 3, 2, maps, group_size=1)
        assert e.composite is not None
        assert not e.notify(GranuleSet.from_ids([0]))
        assert e.notify(GranuleSet.from_ids([1])) == GranuleSet.from_ids([0])
        assert e.notify(GranuleSet.from_ids([2])) == GranuleSet.from_ids([1])

    def test_forward_counter_mode(self):
        maps = {"F": np.array([1, 1, 0])}
        e = EnablementEngine(ForwardIndirectMapping("F"), 3, 3, maps, group_size=1)
        # successor 2 has no writer: enabled immediately
        assert 2 in e.enabled
        newly = e.notify(GranuleSet.from_ids([0, 1]))
        assert newly == GranuleSet.from_ids([1])

    def test_target_defers_untargeted(self):
        maps = {"M": np.array([0, 1, 2, 3])}
        target = GranuleSet.from_ranges([(0, 2)])
        e = EnablementEngine(
            ReverseIndirectMapping("M", fan_in=1), 4, 4, maps, group_size=1, target=target
        )
        # granule 2 enables successor 2, but 2 is untargeted -> deferred
        assert not e.notify(GranuleSet.from_ids([2]))
        e.notify(GranuleSet.from_ids([0]))
        assert e.enabled == GranuleSet.from_ids([0])
        # full predecessor completion releases the deferred remainder
        newly = e.notify(GranuleSet.from_ids([1, 3]))
        assert newly == GranuleSet.from_ids([1, 2, 3])

    def test_complete_all_releases_everything(self):
        e = EnablementEngine(IdentityMapping(), 4, 6)
        e.notify(GranuleSet.from_ids([0]))
        rest = e.complete_all()
        assert e.enabled == GranuleSet.universe(6)
        assert 0 not in rest  # already enabled granules not re-released

    def test_pending_is_complement(self):
        e = EnablementEngine(IdentityMapping(), 4, 4)
        e.notify(GranuleSet.from_ids([1]))
        assert e.pending == GranuleSet.from_ids([0, 2, 3])


# ---------------------------------------------------------------- properties
@settings(max_examples=100, deadline=None)
@given(
    st.integers(min_value=1, max_value=24),
    st.integers(min_value=1, max_value=24),
    st.integers(min_value=1, max_value=3),
    st.integers(min_value=1, max_value=8),
    st.integers(min_value=0, max_value=9999),
    st.lists(st.sets(st.integers(0, 23), max_size=8), max_size=6),
)
def test_counter_engine_safe_and_exact(n_pred, n_succ, fan_in, group_size, seed, steps):
    """The counter machinery never enables a successor granule before
    direct mapping evaluation would (safety, any group size), and with
    single-granule groups it is exactly as eager (no lost enablements).
    Grouped counters fire later by design — a group waits for the union
    of its members' requirements."""
    rng = np.random.default_rng(seed)
    maps = {"M": rng.integers(0, n_pred, size=(fan_in, n_succ))}
    mapping = ReverseIndirectMapping("M", fan_in=fan_in)
    engine = EnablementEngine(mapping, n_pred, n_succ, maps, group_size=group_size)
    completed = GranuleSet.empty()
    for step in steps:
        delta = GranuleSet.from_ids(i for i in step if i < n_pred) - completed
        completed = completed | delta
        engine.notify(delta)
        direct = mapping.enabled_by(completed, n_pred, n_succ, maps)
        assert engine.enabled.issubset(direct), "counter enabled a granule too early"
        if group_size == 1:
            assert engine.enabled == direct
    # full completion closes any remaining gap
    engine.notify(GranuleSet.universe(n_pred) - completed)
    assert engine.enabled == GranuleSet.universe(n_succ)


# ---------------------------------------------------------- inverted index
@settings(max_examples=60, deadline=None)
@given(
    st.integers(min_value=1, max_value=40),
    st.integers(min_value=1, max_value=40),
    st.integers(min_value=1, max_value=3),
    st.integers(min_value=1, max_value=4),
    st.sampled_from(["reverse", "forward"]),
    st.integers(min_value=0, max_value=9999),
    st.lists(st.sets(st.integers(0, 39), max_size=10), max_size=8),
)
def test_indexed_notify_matches_full_scan(
    n_pred, n_succ, fan_in, group_size, kind, seed, steps
):
    """The inverted predecessor->group index is a pure optimization: at
    every step it enables exactly what the full-counter-scan reference
    path (``indexed=False``) enables."""
    rng = np.random.default_rng(seed)
    if kind == "reverse":
        maps = {"M": rng.integers(0, n_pred, size=(fan_in, n_succ))}
        mapping = ReverseIndirectMapping("M", fan_in=fan_in)
    else:
        maps = {"F": rng.integers(0, max(n_succ, 1), size=n_pred)}
        mapping = ForwardIndirectMapping("F")
    fast = EnablementEngine(mapping, n_pred, n_succ, maps, group_size=group_size)
    scan = EnablementEngine(
        mapping, n_pred, n_succ, maps, group_size=group_size, indexed=False
    )
    assert fast.initially_enabled() == scan.initially_enabled()
    completed = GranuleSet.empty()
    for step in steps:
        delta = GranuleSet.from_ids(i for i in step if i < n_pred)
        completed = completed | delta
        assert fast.notify(delta) == scan.notify(delta)
        assert fast.enabled == scan.enabled
        assert fast.pending == scan.pending
    assert fast.complete_all() == scan.complete_all()
    assert fast.enabled == GranuleSet.universe(n_succ)


# ------------------------------------------------------ vectorized counters
@settings(max_examples=60, deadline=None)
@given(
    st.integers(min_value=1, max_value=40),
    st.integers(min_value=1, max_value=40),
    st.integers(min_value=1, max_value=3),
    st.integers(min_value=1, max_value=4),
    st.sampled_from(["reverse", "forward"]),
    st.integers(min_value=0, max_value=9999),
    st.floats(min_value=0.25, max_value=1.0),
    st.lists(st.sets(st.integers(0, 39), max_size=10), max_size=8),
)
def test_vectorized_notify_matches_both_references(
    n_pred, n_succ, fan_in, group_size, kind, seed, target_frac, steps
):
    """Three-way differential: the np.bincount bulk-credit path, the
    per-group indexed path (``vectorized=False``) and the full-counter
    scan (``indexed=False``) enable identical granule sets at every step,
    including with a restricted target subset (deferred release)."""
    rng = np.random.default_rng(seed)
    if kind == "reverse":
        maps = {"M": rng.integers(0, n_pred, size=(fan_in, n_succ))}
        mapping = ReverseIndirectMapping("M", fan_in=fan_in)
    else:
        maps = {"F": rng.integers(0, max(n_succ, 1), size=n_pred)}
        mapping = ForwardIndirectMapping("F")
    target = GranuleSet.universe(max(1, int(target_frac * n_succ)))
    engines = [
        EnablementEngine(
            mapping, n_pred, n_succ, maps, group_size=group_size, target=target
        ),
        EnablementEngine(
            mapping, n_pred, n_succ, maps, group_size=group_size, target=target,
            vectorized=False,
        ),
        EnablementEngine(
            mapping, n_pred, n_succ, maps, group_size=group_size, target=target,
            indexed=False,
        ),
    ]
    vec, idx, scan = engines
    assert vec._counts is not None and idx._counts is None and scan._counts is None
    assert vec.initially_enabled() == idx.initially_enabled() == scan.initially_enabled()
    for step in steps:
        delta = GranuleSet.from_ids(i for i in step if i < n_pred)
        got = [e.notify(delta) for e in engines]
        assert got[0] == got[1] == got[2]
        assert vec.enabled == idx.enabled == scan.enabled
    finals = [e.complete_all() for e in engines]
    assert finals[0] == finals[1] == finals[2]
    assert vec.enabled == GranuleSet.universe(n_succ)


class TestVectorizedEngineEdges:
    def test_vectorized_requires_index(self):
        maps = {"M": np.arange(4)[None, :]}
        with pytest.raises(ValueError, match="requires indexed"):
            EnablementEngine(
                ReverseIndirectMapping("M", fan_in=1), 4, 4, maps,
                indexed=False, vectorized=True,
            )

    def test_counter_fired_flags_synced(self):
        maps = {"M": np.arange(6)[None, :]}
        e = EnablementEngine(ReverseIndirectMapping("M", fan_in=1), 6, 6, maps)
        assert e._counts is not None
        e.notify(GranuleSet.from_ranges([(0, 3)]))
        assert [c.fired for _, c in e._counters] == [True] * 3 + [False] * 3
        assert list(e._group_fired) == [True] * 3 + [False] * 3

    def test_direct_mapping_has_no_vector_state(self):
        e = EnablementEngine(IdentityMapping(), 5, 5)
        assert e._counts is None and e._group_fired is None


class TestIndexedEngineEdges:
    def test_notify_empty_delta_touches_nothing(self):
        maps = {"M": np.arange(6)[None, :]}
        e = EnablementEngine(ReverseIndirectMapping("M", fan_in=1), 6, 6, maps, group_size=1)
        assert not e.notify(GranuleSet.empty())
        assert e.pending == GranuleSet.universe(6)

    def test_repeated_notify_is_idempotent(self):
        maps = {"M": np.arange(8)[None, :]}
        e = EnablementEngine(ReverseIndirectMapping("M", fan_in=1), 8, 8, maps, group_size=1)
        first = e.notify(GranuleSet.from_ranges([(0, 4)]))
        assert first == GranuleSet.from_ranges([(0, 4)])
        assert not e.notify(GranuleSet.from_ranges([(0, 4)]))
        assert e.enabled == GranuleSet.from_ranges([(0, 4)])

    def test_pending_uses_cached_universe(self):
        e = EnablementEngine(IdentityMapping(), 5, 5)
        # same object both calls: the universe is built once in __init__
        assert e._succ_universe is e._succ_universe
        before = e.pending
        e.notify(GranuleSet.from_ids([2]))
        assert e.pending == before - GranuleSet.from_ids([2])
