"""Crash-safe sweeps: worker kills, pool rebuilds, resumable manifests.

The acceptance property: a sweep whose host workers are killed and
resubmitted, or which is interrupted and resumed from its manifest, must
produce a report *byte-identical* to a fault-free serial sweep of the
same spec — derived seeds make recovery invisible in the output.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.cli import main
from repro.faults import FaultPlan, SweepWorkerKill
from repro.sweep import SweepSpec, run_sweep

SPEC = SweepSpec("identity", replications=4, seed=11, sim_workers=4)


def reference_json() -> str:
    """Fault-free serial report — the byte-identity baseline."""
    return run_sweep(SPEC, workers=1).report.to_json()


def run_cli(*argv: str) -> tuple[int, str]:
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestWorkerKills:
    def test_inline_kill_is_byte_identical(self):
        plan = FaultPlan(faults=(SweepWorkerKill(2),))
        outcome = run_sweep(SPEC, workers=1, fault_plan=plan)
        assert outcome.report.to_json() == reference_json()
        assert outcome.worker_restarts == 1

    def test_pool_kill_is_byte_identical(self):
        plan = FaultPlan(faults=(SweepWorkerKill(1),))
        outcome = run_sweep(SPEC, workers=2, fault_plan=plan)
        assert outcome.report.to_json() == reference_json()
        assert outcome.worker_restarts >= 1

    def test_multiple_kills_still_recover(self):
        plan = FaultPlan(faults=(SweepWorkerKill(0), SweepWorkerKill(3)))
        outcome = run_sweep(SPEC, workers=2, fault_plan=plan, max_restarts=4)
        assert outcome.report.to_json() == reference_json()

    def test_restart_cap_escalates(self):
        plan = FaultPlan(faults=(SweepWorkerKill(1),))
        with pytest.raises(RuntimeError, match="max_restarts"):
            run_sweep(SPEC, workers=2, fault_plan=plan, max_restarts=0)


class TestManifest:
    def test_manifest_journal_and_resume(self, tmp_path):
        manifest = tmp_path / "sweep.jsonl"
        reference = reference_json()

        # full run journals every replication
        first = run_sweep(SPEC, workers=1, manifest_path=manifest)
        lines = manifest.read_text().splitlines()
        assert len(lines) == 1 + SPEC.replications  # header + one per replication
        header = json.loads(lines[0])
        assert header["kind"] == "sweep-manifest"
        assert header["spec"] == SPEC.to_dict()

        # truncate to simulate an interrupted sweep: keep 2 replications
        manifest.write_text("\n".join(lines[:3]) + "\n")
        progressed = []
        resumed = run_sweep(
            SPEC,
            workers=1,
            manifest_path=manifest,
            resume=True,
            progress=lambda done, total: progressed.append(done),
        )
        assert resumed.resumed == 2
        assert progressed == [3, 4]  # only the missing replications ran
        assert resumed.report.to_json() == reference == first.report.to_json()
        # after resume the journal is complete again
        assert len(manifest.read_text().splitlines()) == 1 + SPEC.replications

    def test_resume_tolerates_torn_tail(self, tmp_path):
        manifest = tmp_path / "sweep.jsonl"
        run_sweep(SPEC, workers=1, manifest_path=manifest)
        text = manifest.read_text()
        manifest.write_text(text[: len(text) - 40])  # tear the last record
        resumed = run_sweep(SPEC, workers=1, manifest_path=manifest, resume=True)
        assert resumed.report.to_json() == reference_json()

    def test_resume_refuses_foreign_spec(self, tmp_path):
        manifest = tmp_path / "sweep.jsonl"
        other = SweepSpec("identity", replications=2, seed=99, sim_workers=4)
        run_sweep(other, workers=1, manifest_path=manifest)
        with pytest.raises(ValueError, match="spec"):
            run_sweep(SPEC, workers=1, manifest_path=manifest, resume=True)

    def test_resume_of_complete_manifest_runs_nothing(self, tmp_path):
        manifest = tmp_path / "sweep.jsonl"
        run_sweep(SPEC, workers=1, manifest_path=manifest)
        progressed = []
        resumed = run_sweep(
            SPEC,
            workers=1,
            manifest_path=manifest,
            resume=True,
            progress=lambda done, total: progressed.append(done),
        )
        assert progressed == []
        assert resumed.resumed == SPEC.replications
        assert resumed.report.to_json() == reference_json()


class TestSweepCLI:
    def test_kill_replication_flag(self, tmp_path):
        out_file = tmp_path / "report.json"
        code, out = run_cli(
            "sweep", "identity", "--replications", "3", "--seed", "5",
            "--sim-workers", "4", "--kill-replication", "1",
            "-o", str(out_file),
        )
        assert code == 0
        assert "restarts     : 1" in out
        ref = run_sweep(
            SweepSpec("identity", replications=3, seed=5, sim_workers=4), workers=1
        ).report.to_json()
        assert out_file.read_text() == ref

    def test_manifest_resume_flags(self, tmp_path):
        manifest = tmp_path / "m.jsonl"
        code, _ = run_cli(
            "sweep", "identity", "--replications", "3", "--sim-workers", "4",
            "--manifest", str(manifest),
        )
        assert code == 0
        code, out = run_cli(
            "sweep", "identity", "--replications", "3", "--sim-workers", "4",
            "--manifest", str(manifest), "--resume",
        )
        assert code == 0
        assert "resumed      : 3" in out

    def test_resume_requires_manifest(self):
        code, _ = run_cli("sweep", "identity", "--resume")
        assert code == 2
