"""Seeded randomized differential tests for GranuleSet algebra.

Every operator is checked against the obvious ``set[int]`` model over
random interval soups, including the adjacency-merge edges the
two-pointer ``__or__`` and ``union_all`` fast paths must preserve
(``[0,2) | [2,4)`` is the single range ``[0,4)``, never two touching
ranges).  The canonical-form invariant — sorted, disjoint, non-adjacent,
non-empty ranges — is re-asserted after every operation because the fast
paths construct results through ``_from_normalized``, which skips the
normalizing constructor.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.granule import GranuleSet

UNIVERSE = 120


def random_set(rng: np.random.Generator) -> GranuleSet:
    """A random interval soup; from_ranges normalizes overlaps for us."""
    n_ranges = int(rng.integers(0, 8))
    pairs = []
    for _ in range(n_ranges):
        start = int(rng.integers(0, UNIVERSE))
        stop = start + int(rng.integers(0, 12))
        pairs.append((start, stop))
    return GranuleSet.from_ranges(pairs)


def assert_canonical(s: GranuleSet) -> None:
    """The class invariant: sorted, disjoint, non-adjacent, non-empty."""
    ranges = s.ranges
    for r in ranges:
        assert r.start < r.stop
    for a, b in zip(ranges, ranges[1:]):
        assert a.stop < b.start  # `<` (not `<=`): adjacent runs must merge


def assert_matches_model(s: GranuleSet, model: set[int]) -> None:
    assert_canonical(s)
    assert set(s) == model
    assert len(s) == len(model)


@pytest.mark.parametrize("seed", range(40))
def test_binary_algebra_matches_set_model(seed):
    rng = np.random.default_rng(seed)
    a, b = random_set(rng), random_set(rng)
    ma, mb = set(a), set(b)

    assert_matches_model(a | b, ma | mb)
    assert_matches_model(a & b, ma & mb)
    assert_matches_model(a - b, ma - mb)
    assert a.issubset(b) == ma.issubset(mb)
    assert a.isdisjoint(b) == ma.isdisjoint(mb)
    assert (a == b) == (ma == mb)


@pytest.mark.parametrize("seed", range(40))
def test_take_matches_model(seed):
    rng = np.random.default_rng(seed + 1000)
    a = random_set(rng)
    model = sorted(a)
    n = int(rng.integers(0, len(model) + 3))
    taken, rest = a.take(n)
    assert_matches_model(taken, set(model[:n]))
    assert_matches_model(rest, set(model[n:]))
    assert_matches_model(taken | rest, set(model))
    assert taken.isdisjoint(rest)


@pytest.mark.parametrize("seed", range(40))
def test_union_all_matches_fold_and_model(seed):
    rng = np.random.default_rng(seed + 2000)
    sets = [random_set(rng) for _ in range(int(rng.integers(0, 10)))]
    bulk = GranuleSet.union_all(sets)

    folded = GranuleSet.empty()
    model: set[int] = set()
    for s in sets:
        folded = folded | s
        model |= set(s)
    assert bulk == folded
    assert_matches_model(bulk, model)


@pytest.mark.parametrize("seed", range(40))
def test_from_sorted_ids_matches_model(seed):
    rng = np.random.default_rng(seed + 3000)
    ids = np.unique(rng.integers(0, UNIVERSE, size=int(rng.integers(0, 60))))
    s = GranuleSet.from_sorted_ids(ids)
    assert_matches_model(s, set(int(i) for i in ids))
    assert s == GranuleSet.from_ids(int(i) for i in ids)


def test_adjacency_merge_edges():
    # touching ranges merge into one through every construction path
    a = GranuleSet.from_ranges([(0, 2)])
    b = GranuleSet.from_ranges([(2, 4)])
    assert (a | b).ranges == GranuleSet.from_ranges([(0, 4)]).ranges
    assert len((a | b).ranges) == 1

    chain = [GranuleSet.from_ranges([(i, i + 1)]) for i in range(10)]
    merged = GranuleSet.union_all(chain)
    assert merged.ranges == GranuleSet.from_ranges([(0, 10)]).ranges

    contiguous = GranuleSet.from_sorted_ids(np.arange(7))
    assert len(contiguous.ranges) == 1

    # interleaved evens then odds: fold must collapse to one range
    evens = GranuleSet.from_ids(range(0, 20, 2))
    odds = GranuleSet.from_ids(range(1, 20, 2))
    assert len((evens | odds).ranges) == 1
    assert len(GranuleSet.union_all([evens, odds]).ranges) == 1


def test_union_all_trivial_cases():
    assert GranuleSet.union_all([]) == GranuleSet.empty()
    one = GranuleSet.from_ranges([(3, 7)])
    assert GranuleSet.union_all([one]) == one
    assert GranuleSet.union_all([GranuleSet.empty(), one, GranuleSet.empty()]) == one
