"""Warm persistent pools, batched dispatch, and observed concurrency.

The load-bearing properties:

* **Reuse** — a second sweep on the same :class:`WarmPool` runs on the
  same worker processes (same generation, same PIDs) and a profiler
  attached to it attributes ~0 warmup;
* **Recovery** — a killed worker rebuilds the pool through the salvage
  driver and the report stays byte-identical;
* **Hygiene** — ``shutdown()`` leaves no worker processes behind and a
  shared-map grid leaves ``/dev/shm`` clean;
* **Byte-identity** — serial, cold-pool, warm-pool and every batch size
  (including kill salvage mid-batch) produce identical canonical JSON.
"""

from __future__ import annotations

import os
import subprocess
import sys
from glob import glob

import pytest

from repro.faults import FaultPlan, SweepWorkerKill
from repro.obs import PoolProfiler, PoolTaskCompleted, effective_workers_from_events
from repro.sweep import (
    CostModel,
    GridSpec,
    SweepSpec,
    WarmPool,
    map_configs,
    materialize_maps,
    parse_axis,
    run_grid,
    run_sweep,
)

SPEC = SweepSpec("identity", replications=4, seed=11, sim_workers=4)


def reference_json() -> str:
    return run_sweep(SPEC, workers=1).report.to_json()


def _alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists but not ours
        return True
    return True


def _square(x: int) -> int:
    return x * x


class TestWarmPoolLifecycle:
    def test_second_sweep_reuses_workers(self):
        pool = WarmPool()
        try:
            first = run_sweep(SPEC, workers=2, pool=pool)
            generation = pool.generation
            pids = pool.worker_pids()
            assert generation == 1 and pids
            second = run_sweep(SPEC, workers=2, pool=pool)
            assert pool.generation == generation, "reuse must not rebuild"
            assert pool.worker_pids() == pids, "reuse must not respawn workers"
            assert not first.pool_reused and second.pool_reused
            assert first.report.to_json() == second.report.to_json()
        finally:
            pool.shutdown()

    def test_warmup_attribution_zero_on_reused_pool(self):
        pool = WarmPool()
        try:
            run_sweep(SPEC, workers=2, pool=pool)  # spawn + warm the workers
            assert len(pool.worker_pids()) == 2
            profiler = PoolProfiler()
            run_sweep(SPEC, workers=2, pool=pool, profiler=profiler, batch_size=1)
            profile = profiler.profile("replication", 2)
            assert len(profile.tasks) == SPEC.replications
            # worker init stamps predate the profiled sweep's submissions,
            # so there is no spawn/import cost left to attribute
            assert profile.totals()["warmup"] == 0.0
        finally:
            pool.shutdown()

    def test_killed_worker_rebuilds_and_stays_byte_identical(self):
        pool = WarmPool()
        try:
            plan = FaultPlan(faults=(SweepWorkerKill(1),))
            outcome = run_sweep(SPEC, workers=2, fault_plan=plan, pool=pool)
            assert outcome.report.to_json() == reference_json()
            assert outcome.worker_restarts >= 1
            assert pool.generation >= 2, "salvage must have rebuilt the pool"
            # the rebuilt pool keeps serving clean sweeps
            clean = run_sweep(SPEC, workers=2, pool=pool)
            assert clean.report.to_json() == reference_json()
            assert clean.worker_restarts == 0
        finally:
            pool.shutdown()

    def test_shutdown_leaves_no_processes(self):
        pool = WarmPool()
        run_sweep(SPEC, workers=2, pool=pool)
        pids = pool.worker_pids()
        assert pids
        pool.shutdown()
        assert not pool.active and pool.worker_pids() == []
        assert pool.max_workers == 0
        for pid in pids:
            assert not _alive(pid), f"worker {pid} outlived shutdown()"

    def test_pool_grows_but_never_shrinks(self):
        pool = WarmPool()
        try:
            run_sweep(SPEC, workers=2, pool=pool)
            assert pool.max_workers == 2
            gen = pool.generation
            run_sweep(SPEC, workers=3, pool=pool)  # grow: rebuild at width 3
            assert pool.max_workers == 3 and pool.generation == gen + 1
            run_sweep(SPEC, workers=2, pool=pool)  # narrower: reuse, windowed
            assert pool.max_workers == 3 and pool.generation == gen + 1
        finally:
            pool.shutdown()

    def test_shared_map_grid_leaves_dev_shm_clean(self):
        grid = GridSpec(
            base=SweepSpec(
                "reverse-indirect", replications=2, seed=7, sim_workers=2,
                params={"n": 64},
            ),
            axes=(parse_axis("sim_workers=2,4"),),
        )
        shared = materialize_maps(grid)
        assert shared
        pool = WarmPool()
        try:
            outcome = run_grid(grid, workers=2, shared_maps=shared, pool=pool)
            assert outcome.shared_map_bytes > 0
        finally:
            pool.shutdown()
        leftovers = [p for p in glob("/dev/shm/repro-map-*") if os.path.exists(p)]
        assert leftovers == [], f"segments leaked: {leftovers}"


class TestByteIdentityAcrossDisciplines:
    def test_serial_cold_warm_and_batch_sizes_identical(self):
        ref = reference_json()
        pool = WarmPool()
        try:
            for batch_size in (None, 1, 2, 3, 5):
                outcome = run_sweep(SPEC, workers=2, batch_size=batch_size, pool=pool)
                assert outcome.report.to_json() == ref, f"batch_size={batch_size}"
            cold = run_sweep(SPEC, workers=2, pool="cold")
            assert cold.report.to_json() == ref
            assert not cold.pool_reused
        finally:
            pool.shutdown()

    def test_kill_salvage_mid_batch_identical(self):
        pool = WarmPool()
        try:
            plan = FaultPlan(faults=(SweepWorkerKill(0), SweepWorkerKill(3)))
            outcome = run_sweep(
                SPEC, workers=2, fault_plan=plan, batch_size=2, pool=pool,
                max_restarts=4,
            )
            assert outcome.report.to_json() == reference_json()
            assert outcome.worker_restarts >= 1
        finally:
            pool.shutdown()

    def test_salvage_storm_stays_byte_identical_without_leaks(self):
        # a kill that recurs on three consecutive attempts forces three
        # full salvage/rebuild/resubmit rounds through the same pool —
        # the storm must neither corrupt the report nor strand workers
        pool = WarmPool()
        try:
            plan = FaultPlan(faults=(SweepWorkerKill(1, attempts=3),))
            before = set(pool.worker_pids())
            outcome = run_sweep(
                SPEC, workers=2, fault_plan=plan, pool=pool, max_restarts=5
            )
            assert outcome.report.to_json() == reference_json()
            assert outcome.worker_restarts == 3
            assert pool.generation >= 4, "three storms = three rebuilds"
            survivors = set(pool.worker_pids())
            assert survivors, "the pool must end the storm rebuilt and serving"
        finally:
            pool.shutdown()
        for pid in before | survivors:
            assert not _alive(pid), f"worker {pid} leaked through the storm"

    def test_grid_chunked_through_warm_pool_identical(self):
        grid = GridSpec(
            base=SweepSpec("identity", replications=2, seed=5, sim_workers=4),
            axes=(parse_axis("sim_workers=4,8"),),
        )
        ref = run_grid(grid, workers=1).report.to_json()
        pool = WarmPool()
        try:
            first = run_grid(grid, workers=2, chunk_size=3, pool=pool)
            second = run_grid(grid, workers=2, pool=pool)
            assert first.report.to_json() == ref
            assert second.report.to_json() == ref
            assert first.chunk_size == 3 and second.chunk_size >= 1
            assert not first.pool_reused and second.pool_reused
        finally:
            pool.shutdown()


class TestAtexitOrdering:
    def test_interpreter_exit_drains_pool_before_unlinking_segments(self):
        # atexit runs LIFO: warm_pool() must import repro.sweep.shm (pinning
        # its unlink guard deeper in the stack) *before* registering
        # shutdown_warm_pool, so workers drain before their attached
        # segments vanish.  Regression check is functional: a driver that
        # exits without any explicit teardown must leave /dev/shm clean
        # and die quietly (a reversed order yanks maps from live workers).
        script = """
import numpy as np
from repro.sweep import SweepSpec, run_sweep
from repro.sweep.pool import warm_pool
from repro.sweep.shm import SharedMapStore

pool = warm_pool()
store = SharedMapStore.create({"m": np.arange(32, dtype=np.int64)})
run_sweep(SweepSpec("identity", replications=2, seed=3, sim_workers=2),
          workers=2, pool=pool)
print(" ".join(sorted(d["segment"] for d in store.descriptors().values())))
"""
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        env = dict(os.environ, PYTHONPATH=src)
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, env=env, timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        names = proc.stdout.split()
        assert names, "subprocess must have created shared segments"
        for name in names:
            assert not os.path.exists(f"/dev/shm/{name}"), f"{name} leaked"
        assert "Traceback" not in proc.stderr
        assert "leaked shared_memory" not in proc.stderr


class TestCostModel:
    def test_unobserved_key_defers_to_calibration(self):
        assert CostModel().pick_batch_size("k", 10, 2) is None

    def test_cheap_items_batch_up_to_fair_share(self):
        m = CostModel()
        m.observe("k", 1.0, 100)  # 10 ms/item -> mid-band wants ~30
        assert m.pick_batch_size("k", 10, 2) == 5  # ceil(10/2) fair cap

    def test_expensive_items_stay_singletons(self):
        m = CostModel()
        m.observe("k", 10.0, 10)  # 1 s/item: already past the band
        assert m.pick_batch_size("k", 10, 2) == 1

    def test_ewma_blends_observations(self):
        m = CostModel()
        m.observe("k", 1.0, 1)
        m.observe("k", 3.0, 1)
        assert m.estimate("k") == 2.0

    def test_degenerate_observations_ignored(self):
        m = CostModel()
        m.observe("k", 1.0, 0)
        m.observe("k", -1.0, 4)
        assert m.estimate("k") is None

    def test_zero_duration_floors_instead_of_zeroing_the_ewma(self):
        # timer granularity can report 0.0s for a real batch; a zero EWMA
        # would snap batch sizes to the fair-share cap AND derive
        # floor-clamped supervision deadlines that preempt healthy tasks
        m = CostModel()
        m.observe("k", 0.0, 100)
        assert m.estimate("k") == CostModel.MIN_PER_ITEM
        assert m.pick_batch_size("k", 10, 2) == 5  # fair cap, not infinity

    def test_zero_duration_cannot_collapse_a_real_estimate(self):
        m = CostModel()
        m.observe("k", 1.0, 1)
        m.observe("k", 0.0, 1)
        assert m.estimate("k") == pytest.approx(0.5, rel=1e-3)

    def test_non_finite_durations_ignored(self):
        m = CostModel()
        m.observe("k", float("nan"), 4)
        m.observe("k", float("inf"), 4)
        assert m.estimate("k") is None


class TestEffectiveWorkers:
    def test_full_overlap_counts_both_spans(self):
        events = [
            PoolTaskCompleted(1.0, "replication", 1, 2, 0.0, 1.0),
            PoolTaskCompleted(1.1, "replication", 2, 2, 0.0, 1.0),
        ]
        assert effective_workers_from_events(events) == 2.0

    def test_sequential_spans_are_one_worker(self):
        events = [
            PoolTaskCompleted(1.0, "replication", 1, 2, 0.0, 1.0),
            PoolTaskCompleted(2.0, "replication", 2, 2, 1.0, 2.0),
        ]
        assert effective_workers_from_events(events) == 1.0

    def test_unmeasured_spans_ignored(self):
        events = [PoolTaskCompleted(1.0, "replication", 1, 1)]
        assert effective_workers_from_events(events) == 1.0


class TestMapConfigs:
    def test_order_preserved_through_warm_pool(self):
        pool = WarmPool()
        try:
            xs = list(range(7))
            out = map_configs(_square, xs, workers=2, pool=pool)
            assert out == [x * x for x in xs]
            assert pool.tasks_dispatched >= len(xs)
        finally:
            pool.shutdown()

    def test_inline_when_single_worker(self):
        assert map_configs(_square, [3, 4], workers=1) == [9, 16]
