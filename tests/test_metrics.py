"""Tests for utilization metrics and rundown accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.mapping import IdentityMapping, NullMapping
from repro.core.overlap import OverlapConfig
from repro.executive import ExecutiveCosts, run_program
from repro.metrics.report import census_table, comparison_table, format_table
from repro.metrics.rundown import rundown_report, rundown_reports, total_rundown_idle
from repro.metrics.utilization import (
    busy_counts_at,
    idle_processor_time,
    mean_utilization,
    utilization_between,
)
from repro.sim.trace import Interval, Trace
from tests.conftest import two_phase_program


def hand_trace() -> Trace:
    """P0 busy [0,4); P1 busy [0,2); makespan 4."""
    tr = Trace()
    tr.add_interval(Interval("P0", 0.0, 4.0))
    tr.add_interval(Interval("P1", 0.0, 2.0))
    return tr


class TestUtilization:
    def test_mean_utilization(self):
        assert mean_utilization(hand_trace(), 2) == pytest.approx(6.0 / 8.0)

    def test_empty_trace(self):
        assert mean_utilization(Trace(), 4) == 0.0

    def test_window_utilization(self):
        tr = hand_trace()
        assert utilization_between(tr, 2, 0.0, 2.0) == pytest.approx(1.0)
        assert utilization_between(tr, 2, 2.0, 4.0) == pytest.approx(0.5)

    def test_window_validation(self):
        with pytest.raises(ValueError):
            utilization_between(hand_trace(), 2, 3.0, 3.0)

    def test_idle_processor_time(self):
        tr = hand_trace()
        assert idle_processor_time(tr, 2) == pytest.approx(2.0)
        assert idle_processor_time(tr, 2, 2.0, 4.0) == pytest.approx(2.0)
        assert idle_processor_time(tr, 2, 0.0, 2.0) == pytest.approx(0.0)

    def test_mgmt_counts_as_idle(self):
        tr = hand_trace()
        tr.add_interval(Interval("P1", 2.0, 4.0, "mgmt"))
        # mgmt time on a worker is not productive computation
        assert idle_processor_time(tr, 2) == pytest.approx(2.0)

    def test_busy_counts_at(self):
        tr = hand_trace()
        got = busy_counts_at(tr, np.array([-1.0, 0.0, 1.0, 2.0, 3.9, 4.0]))
        assert list(got) == [0, 2, 2, 1, 1, 0]

    def test_exec_resource_excluded(self):
        tr = hand_trace()
        tr.add_interval(Interval("EXEC", 0.0, 100.0, "mgmt"))
        assert mean_utilization(tr, 2) == pytest.approx(6.0 / (2 * 100.0))
        # EXEC contributes to makespan but never to worker busy time


class TestRundown:
    def test_barrier_rundown_has_idle(self, small_costs):
        r = run_program(two_phase_program(IdentityMapping(), n=68), 8,
                        config=OverlapConfig.barrier(), costs=small_costs)
        reports = rundown_reports(r)
        assert reports
        assert any(rep.idle_time > 0 for rep in reports)

    def test_overlap_shrinks_rundown_idle(self, small_costs):
        prog = two_phase_program(IdentityMapping(), n=68)
        rb = run_program(prog, 8, config=OverlapConfig.barrier(), costs=small_costs)
        ro = run_program(prog, 8, config=OverlapConfig(), costs=small_costs)
        # compare the predecessor phase's rundown specifically
        idle_b = rundown_report(rb, 0).idle_time
        idle_o = rundown_report(ro, 0).idle_time
        assert idle_o < idle_b

    def test_total_rundown_idle_merges_windows(self, small_costs):
        r = run_program(two_phase_program(NullMapping(), n=68), 8,
                        config=OverlapConfig.barrier(), costs=small_costs)
        total = total_rundown_idle(r)
        assert total >= 0
        # merged total never exceeds the sum of the individual windows
        assert total <= sum(rep.idle_time for rep in rundown_reports(r)) + 1e-9

    def test_report_fields(self, small_costs):
        r = run_program(two_phase_program(IdentityMapping(), n=68), 8,
                        config=OverlapConfig.barrier(), costs=small_costs)
        rep = rundown_report(r, 0)
        assert rep.phase == "A"
        assert rep.duration == pytest.approx(rep.window_end - rep.window_start)
        assert 0.0 <= rep.utilization <= 1.0


class TestReport:
    def test_format_table_alignment(self):
        txt = format_table(["a", "bb"], [["x", 1], ["yy", 2.5]], title="T")
        lines = txt.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_format_table_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a"], [["x", "y"]])

    def test_census_table_includes_summary_row(self):
        from repro.core.classifier import classify_program
        from repro.workloads.casper import casper_suite

        txt = census_table(classify_program(casper_suite(), wrap=True))
        assert "easily overlapped" in txt
        assert "68%" in txt

    def test_comparison_table_ratio(self):
        txt = comparison_table([("x", 10.0, 5.0)])
        assert "0.500" in txt
