"""Tests for the command-line interface."""

from __future__ import annotations

import io

import pytest

from repro.cli import main


def run_cli(*argv: str) -> tuple[int, str]:
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestLeftover:
    def test_paper_numbers(self):
        code, text = run_cli("leftover", "524288", "1000")
        assert code == 0
        assert "524" in text and "288" in text and "712" in text

    def test_exact_division(self):
        code, text = run_cli("leftover", "100", "10")
        assert code == 0
        assert "idle processors final wave : 0" in text


class TestCensus:
    def test_prints_paper_table(self):
        code, text = run_cli("census")
        assert code == 0
        assert "identity" in text and "551" in text
        assert "68%" in text


class TestSimulate:
    @pytest.mark.parametrize("workload", ["identity", "universal", "checkerboard", "particles"])
    def test_workloads_run(self, workload):
        code, text = run_cli("simulate", workload, "--workers", "4")
        assert code == 0
        assert "makespan" in text and "utilization" in text

    def test_barrier_flag(self):
        _, overlap_text = run_cli("simulate", "identity", "--workers", "4")
        _, barrier_text = run_cli("simulate", "identity", "--workers", "4", "--barrier")
        assert "barrier" in barrier_text
        assert "overlap" in overlap_text

    def test_gantt_output(self):
        code, text = run_cli("simulate", "identity", "--workers", "2", "--gantt",
                             "--gantt-width", "40")
        assert code == 0
        assert "P0" in text and "|" in text

    def test_extensions_flags(self):
        code, text = run_cli(
            "simulate", "identity", "--workers", "4",
            "--middle-managers", "2", "--lateral-handoff",
        )
        assert code == 0
        assert "lateral hand-offs" in text

    def test_shared_executive(self):
        code, _ = run_cli("simulate", "identity", "--workers", "4", "--shared-executive")
        assert code == 0


class TestStats:
    @pytest.mark.parametrize("workload", ["identity", "universal"])
    def test_prints_attribution_and_snapshot(self, workload):
        code, text = run_cli("stats", workload, "--workers", "4")
        assert code == 0
        assert "overlap admissions" in text
        assert "rundown idle attribution" in text
        for p in range(4):
            assert f"rundown.idle_seconds{{processor=\"P{p}\"}}" in text
        assert "overlap.admitted_total" in text
        assert "scheduler.queue_depth" in text

    def test_barrier_shows_rejections(self):
        code, text = run_cli("stats", "identity", "--workers", "4", "--barrier")
        assert code == 0
        assert "rejected: barrier_policy" in text

    def test_save_writes_run(self, tmp_path):
        path = tmp_path / "run.json"
        code, _ = run_cli("stats", "identity", "--workers", "2", "--save", str(path))
        assert code == 0 and path.exists()


class TestExportTrace:
    def _saved_run(self, tmp_path):
        path = tmp_path / "run.json"
        code, _ = run_cli("simulate", "identity", "--workers", "2", "--save", str(path))
        assert code == 0
        return path

    def test_chrome_roundtrip(self, tmp_path):
        import json

        src = self._saved_run(tmp_path)
        out = tmp_path / "out.trace.json"
        code, text = run_cli("export-trace", str(src), "-o", str(out))
        assert code == 0 and out.exists()
        doc = json.loads(out.read_text())
        events = doc["traceEvents"]
        assert events
        for e in events:
            assert {"ph", "ts", "pid", "tid"} <= set(e)
        assert any(e["ph"] == "X" for e in events)

    def test_default_output_path(self, tmp_path):
        src = self._saved_run(tmp_path)
        code, text = run_cli("export-trace", str(src))
        assert code == 0
        assert (tmp_path / "run.trace.json").exists()

    def test_jsonl_format(self, tmp_path):
        from repro.obs.spans import load_jsonl

        src = self._saved_run(tmp_path)
        out = tmp_path / "spans.jsonl"
        code, _ = run_cli("export-trace", str(src), "--format", "jsonl", "-o", str(out))
        assert code == 0
        spans = load_jsonl(out)
        assert spans and all(s.end >= s.start for s in spans)

    def test_missing_file(self):
        code, _ = run_cli("export-trace", "/nonexistent.json")
        assert code == 2


class TestCompile:
    SOURCE = (
        "DEFINE PHASE a GRANULES=16\n"
        "DEFINE PHASE b GRANULES=16\n"
        "DISPATCH a ENABLE [b/MAPPING=IDENTITY]\n"
        "DISPATCH b\n"
    )

    def test_compile_prints_schedule_and_links(self, tmp_path):
        f = tmp_path / "prog.pax"
        f.write_text(self.SOURCE)
        code, text = run_cli("compile", str(f))
        assert code == 0
        assert "schedule : ['a', 'b']" in text
        assert "a -> b" in text and "identity" in text

    def test_compile_run_defaults_declared_map_generators(self):
        # a program with a MAP but no registered generator must simulate
        # with a synthesized random map, not crash
        code, text = run_cli("compile", "examples/gather_scatter.pax", "--run")
        assert code == 0
        assert "random default generators for ['IMAP']" in text
        assert "makespan" in text

    def test_compile_and_run(self, tmp_path):
        f = tmp_path / "prog.pax"
        f.write_text(self.SOURCE)
        code, text = run_cli("compile", str(f), "--run", "--workers", "4")
        assert code == 0
        assert "makespan" in text

    def test_verification_failure_exit_code(self, tmp_path):
        f = tmp_path / "bad.pax"
        f.write_text(
            "DEFINE PHASE a GRANULES=4\nDEFINE PHASE b GRANULES=4\nDEFINE PHASE c GRANULES=4\n"
            "DISPATCH a ENABLE [b/MAPPING=IDENTITY]\nDISPATCH c\n"
        )
        code, _ = run_cli("compile", str(f))
        assert code == 1

    def test_missing_file(self):
        code, _ = run_cli("compile", "/nonexistent/file.pax")
        assert code == 2

    def test_env_bindings(self, tmp_path):
        f = tmp_path / "branch.pax"
        f.write_text(
            "DEFINE PHASE m GRANULES=8\nDEFINE PHASE x GRANULES=8\nDEFINE PHASE y GRANULES=8\n"
            "DISPATCH m ENABLE/BRANCHINDEPENDENT [x/MAPPING=IDENTITY y/MAPPING=UNIVERSAL]\n"
            "IF (K .EQ. 0) THEN GOTO other\nDISPATCH x\nGOTO end\nother:\nDISPATCH y\nend:\n"
        )
        code, text = run_cli("compile", str(f), "--set", "K=0")
        assert code == 0 and "'y'" in text
        code, text = run_cli("compile", str(f), "--set", "K=1")
        assert code == 0 and "'x'" in text

    def test_bad_binding(self, tmp_path):
        f = tmp_path / "p.pax"
        f.write_text(self.SOURCE)
        code, _ = run_cli("compile", str(f), "--set", "K=abc")
        assert code == 2


class TestGanttCommand:
    def test_save_and_render(self, tmp_path):
        path = tmp_path / "run.json"
        code, text = run_cli("simulate", "identity", "--workers", "2", "--save", str(path))
        assert code == 0 and path.exists()
        code, chart = run_cli("gantt", str(path), "--width", "40")
        assert code == 0
        assert "P0" in chart and "|" in chart

    def test_window_options(self, tmp_path):
        path = tmp_path / "run.json"
        run_cli("simulate", "identity", "--workers", "2", "--save", str(path))
        code, chart = run_cli("gantt", str(path), "--width", "30", "--from", "0", "--to", "5")
        assert code == 0

    def test_missing_file(self):
        code, _ = run_cli("gantt", "/nonexistent.json")
        assert code == 2

    def test_bare_trace_accepted(self, tmp_path):
        from repro.core.mapping import IdentityMapping
        from repro.core.overlap import OverlapConfig
        from repro.executive import run_program
        from repro.sim.persist import save_trace
        from tests.conftest import two_phase_program

        r = run_program(two_phase_program(IdentityMapping(), n=16), 2, config=OverlapConfig())
        path = tmp_path / "trace.json"
        save_trace(r.trace, path)
        code, chart = run_cli("gantt", str(path), "--width", "30")
        assert code == 0 and "EXEC" in chart


class TestProfileCommand:
    def _saved_run(self, tmp_path):
        path = tmp_path / "run.json"
        code, _ = run_cli("simulate", "identity", "--workers", "2", "--save", str(path))
        assert code == 0
        return path

    def test_text_waterfall(self, tmp_path):
        code, text = run_cli("profile", str(self._saved_run(tmp_path)))
        assert code == 0
        assert "run waterfall" in text and "critical path" in text
        assert "barrier_wait" in text or "idle" in text

    def test_json_output_and_save(self, tmp_path):
        import json

        out = tmp_path / "wf.json"
        code, text = run_cli(
            "profile", str(self._saved_run(tmp_path)), "--json", "-o", str(out)
        )
        assert code == 0 and out.exists()
        doc = json.loads(out.read_text())
        assert doc["kind"] == "waterfall"
        assert doc["resources"] and doc["critical_path"]
        assert json.loads(text.split("saved waterfall report")[0]) == doc

    def test_missing_file(self):
        code, _ = run_cli("profile", "/nonexistent.json")
        assert code == 2


class TestSweepSupervisionFlags:
    ARGS = ("sweep", "identity", "--replications", "2", "--seed", "7",
            "--sim-workers", "4")

    def test_hang_flag_recovers_byte_identical(self, tmp_path):
        clean, chaotic = tmp_path / "clean.json", tmp_path / "chaos.json"
        assert run_cli(*self.ARGS, "-o", str(clean))[0] == 0
        code, text = run_cli(
            *self.ARGS, "--workers", "2", "--hang-replication", "1",
            "--task-timeout", "1", "-o", str(chaotic),
        )
        assert code == 0
        assert clean.read_bytes() == chaotic.read_bytes()
        assert "hangs        : " in text and "preempted" in text

    def test_slow_flag_parses_and_stays_identical(self, tmp_path):
        clean, slowed = tmp_path / "clean.json", tmp_path / "slow.json"
        assert run_cli(*self.ARGS, "-o", str(clean))[0] == 0
        code, _ = run_cli(
            *self.ARGS, "--workers", "2", "--slow-replication", "0:0.2",
            "-o", str(slowed),
        )
        assert code == 0
        assert clean.read_bytes() == slowed.read_bytes()

    def test_malformed_slow_spec_rejected(self, capsys):
        code, _ = run_cli(*self.ARGS, "--slow-replication", "nope")
        assert code == 2
        assert "R:SECONDS" in capsys.readouterr().err

    def test_chaos_seed_env_var_drives_the_harness(self, tmp_path, monkeypatch):
        clean, chaotic = tmp_path / "clean.json", tmp_path / "chaos.json"
        monkeypatch.delenv("REPRO_CHAOS_SEED", raising=False)
        assert run_cli(*self.ARGS, "-o", str(clean))[0] == 0
        monkeypatch.setenv("REPRO_CHAOS_SEED", "1")
        code, _ = run_cli(
            *self.ARGS, "--workers", "2", "--task-timeout", "2",
            "--heartbeat-timeout", "3", "-o", str(chaotic),
        )
        assert code == 0
        assert clean.read_bytes() == chaotic.read_bytes()

    def test_supervise_flag_alone_changes_nothing(self, tmp_path):
        clean, supervised = tmp_path / "clean.json", tmp_path / "sup.json"
        assert run_cli(*self.ARGS, "-o", str(clean))[0] == 0
        code, _ = run_cli(
            *self.ARGS, "--workers", "2", "--supervise", "-o", str(supervised)
        )
        assert code == 0
        assert clean.read_bytes() == supervised.read_bytes()


class TestSweepProfileFlag:
    def test_profile_report_written_alongside_output(self, tmp_path):
        import json

        out = tmp_path / "sweep.json"
        code, text = run_cli(
            "sweep", "identity", "--replications", "2", "--seed", "7",
            "--sim-workers", "4", "--profile", "-o", str(out),
        )
        assert code == 0
        assert "pool profile" in text and "attribution coverage" in text
        profile_path = tmp_path / "sweep.profile.json"
        assert profile_path.exists()
        doc = json.loads(profile_path.read_text())
        assert doc["kind"] == "profile-report"
        assert doc["pool"]["task_count"] == 2
        assert doc["meta"]["workload"] == "identity"

    def test_explicit_profile_path(self, tmp_path):
        target = tmp_path / "my.profile.json"
        code, _ = run_cli(
            "sweep", "identity", "--replications", "2", "--seed", "7",
            "--sim-workers", "4", "--profile", str(target),
        )
        assert code == 0 and target.exists()

    def test_report_bytes_unchanged_by_profiling(self, tmp_path):
        plain, profiled = tmp_path / "plain.json", tmp_path / "prof.json"
        args = ("sweep", "identity", "--replications", "2", "--seed", "7",
                "--sim-workers", "4")
        assert run_cli(*args, "-o", str(plain))[0] == 0
        assert run_cli(*args, "-o", str(profiled), "--profile")[0] == 0
        assert plain.read_bytes() == profiled.read_bytes()

    def test_grid_profile(self, tmp_path):
        import json

        target = tmp_path / "grid.profile.json"
        code, text = run_cli(
            "sweep", "identity", "--replications", "1", "--seed", "7",
            "--sim-workers", "4", "--grid", "sim_workers=4,8",
            "--profile", str(target),
        )
        assert code == 0 and target.exists()
        doc = json.loads(target.read_text())
        assert doc["meta"]["command"] == "sweep --grid"
        assert doc["pool"]["what"] == "cell"


class TestExportTraceStreaming:
    def _spans_jsonl(self, tmp_path):
        run = tmp_path / "run.json"
        assert run_cli("simulate", "identity", "--workers", "2", "--save", str(run))[0] == 0
        jsonl = tmp_path / "run.spans.jsonl"
        assert run_cli("export-trace", str(run), "--format", "jsonl", "-o", str(jsonl))[0] == 0
        return run, jsonl

    def test_jsonl_input_to_chrome(self, tmp_path):
        import json

        _, jsonl = self._spans_jsonl(tmp_path)
        out = tmp_path / "from_jsonl.trace.json"
        code, text = run_cli("export-trace", str(jsonl), "-o", str(out))
        assert code == 0
        doc = json.loads(out.read_text())
        assert any(e["ph"] == "X" for e in doc["traceEvents"])

    def test_jsonl_input_round_trips(self, tmp_path):
        _, jsonl = self._spans_jsonl(tmp_path)
        out = tmp_path / "copy.spans.jsonl"
        code, _ = run_cli("export-trace", str(jsonl), "--format", "jsonl", "-o", str(out))
        assert code == 0
        assert out.read_text() == jsonl.read_text()

    def test_streaming_chrome_matches_legacy_document_shape(self, tmp_path):
        import json

        run, _ = self._spans_jsonl(tmp_path)
        out = tmp_path / "run.trace.json"
        code, text = run_cli("export-trace", str(run), "-o", str(out))
        assert code == 0
        doc = json.loads(out.read_text())
        assert doc["displayTimeUnit"] == "ms"
        assert f"wrote {len(doc['traceEvents'])} chrome events" in text


class TestStatsExports:
    def test_prom_and_jsonl_exports(self, tmp_path):
        import json

        prom = tmp_path / "metrics.prom"
        jsonl = tmp_path / "metrics.jsonl"
        code, text = run_cli(
            "stats", "identity", "--workers", "4",
            "--prom", str(prom), "--metrics-jsonl", str(jsonl),
        )
        assert code == 0
        assert "wrote Prometheus metrics" in text
        prom_text = prom.read_text()
        assert "# TYPE" in prom_text and "rundown_idle_seconds" in prom_text
        line = json.loads(jsonl.read_text().splitlines()[0])
        assert line["meta"]["source"] == "identity"
        assert "rundown.idle_seconds" in line["metrics"]
