"""Chrome trace-event export round-trip under fault injection.

A retried granule opens a new span per attempt; every attempt must close
exactly once, and both Chrome exporters (in-memory and streaming) must
emit exactly one complete event per closed interval — no duplicated or
dangling spans, fault plan or not.
"""

from __future__ import annotations

import json

import pytest

from repro.core.mapping import IdentityMapping
from repro.executive import ExecutiveSimulation
from repro.faults import FaultPlan, RecoveryPolicy, TransientGranuleError
from repro.obs import (
    chrome_trace_from_trace,
    export_jsonl,
    instants_from_trace,
    iter_spans_jsonl,
    iter_trace_spans,
    load_jsonl,
    spans_from_trace,
    write_chrome_trace_streaming,
)
from repro.sim.events import EventKind
from tests.conftest import two_phase_program


@pytest.fixture(scope="module")
def faulted_result():
    program = two_phase_program(IdentityMapping(), n=32)
    sim = ExecutiveSimulation(
        program,
        4,
        seed=11,
        faults=FaultPlan(seed=3, faults=(TransientGranuleError(0.2),)),
        recovery=RecoveryPolicy(max_retries=8),
    )
    return sim.run()


class TestSpanPairing:
    def test_no_dangling_spans_after_faulted_run(self, faulted_result):
        trace = faulted_result.trace
        assert not trace._open, "every begin() must be closed by end()"
        retries = trace.records_of(EventKind.TASK_RETRY)
        assert retries, "fault plan should have forced retries"
        starts = trace.records_of(EventKind.TASK_START)
        ends = trace.records_of(EventKind.TASK_END)
        assert len(starts) == len(ends)
        assert faulted_result.retries == len(retries)
        # retried attempts really re-ran: the same granule-set label closes
        # once per attempt, so some compute label recurs
        from collections import Counter

        labels = Counter(
            iv.label for iv in trace.intervals() if iv.category == "compute"
        )
        assert max(labels.values()) >= 2

    def test_every_interval_well_formed(self, faulted_result):
        for iv in faulted_result.trace.intervals():
            assert iv.end >= iv.start
            if iv.category == "compute":
                assert iv.end > iv.start
        for res in faulted_result.trace.resources():
            ivs = sorted(faulted_result.trace.intervals(res), key=lambda i: i.start)
            for a, b in zip(ivs, ivs[1:]):
                assert a.end <= b.start + 1e-9, f"overlap on {res}"


class TestChromeExport:
    def test_one_complete_event_per_interval(self, faulted_result):
        trace = faulted_result.trace
        doc = chrome_trace_from_trace(trace)
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(complete) == sum(1 for _ in trace.intervals())
        assert all(e["dur"] >= 0 for e in complete)
        # a worker runs one attempt at a time, so compute events never
        # collide on (track, start) — each span closed exactly once
        keys = [(e["tid"], e["ts"]) for e in complete if e["cat"] == "compute"]
        assert len(keys) == len(set(keys))

    def test_retried_granule_spans_close_exactly_once(self, faulted_result):
        trace = faulted_result.trace
        doc = chrome_trace_from_trace(trace)
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        # an attempt == a compute interval; its Chrome event carries the
        # granule-set label, so label counts match the trace exactly
        from collections import Counter

        trace_labels = Counter(
            iv.label for iv in trace.intervals() if iv.category == "compute"
        )
        event_labels = Counter(e["name"] for e in complete if e["cat"] == "compute")
        assert event_labels == trace_labels

    def test_retry_records_become_instants(self, faulted_result):
        doc = chrome_trace_from_trace(faulted_result.trace)
        instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        retried = [e for e in instants if e["name"] == "task_retry"]
        assert len(retried) == len(
            faulted_result.trace.records_of(EventKind.TASK_RETRY)
        )
        # the backoff detail survives into the event args
        assert all(e["args"].get("backoff", 0) > 0 for e in retried)

    def test_streaming_writer_emits_identical_events(self, faulted_result, tmp_path):
        trace = faulted_result.trace
        expected = chrome_trace_from_trace(trace)
        path = tmp_path / "stream.trace.json"
        n = write_chrome_trace_streaming(
            lambda: iter_trace_spans(trace), path, instants_from_trace(trace)
        )
        doc = json.loads(path.read_text())
        assert doc["displayTimeUnit"] == "ms"
        assert n == len(doc["traceEvents"]) == len(expected["traceEvents"])
        assert doc["traceEvents"] == expected["traceEvents"]


class TestJsonlRoundTrip:
    def test_spans_survive_jsonl_round_trip(self, faulted_result, tmp_path):
        spans = spans_from_trace(faulted_result.trace)
        path = tmp_path / "run.spans.jsonl"
        export_jsonl(spans, path)
        assert load_jsonl(path) == spans
        assert list(iter_spans_jsonl(path)) == spans

    def test_jsonl_to_chrome_matches_direct_export(self, faulted_result, tmp_path):
        trace = faulted_result.trace
        jsonl = tmp_path / "run.spans.jsonl"
        export_jsonl(iter_trace_spans(trace), jsonl)
        from_file = tmp_path / "from_file.trace.json"
        write_chrome_trace_streaming(lambda: iter_spans_jsonl(jsonl), from_file)
        direct = tmp_path / "direct.trace.json"
        write_chrome_trace_streaming(lambda: iter_trace_spans(trace), direct)
        assert json.loads(from_file.read_text()) == json.loads(direct.read_text())
