"""Tests for the paper's identified follow-on strategies.

"These include a middle management scheme to parallelize the serial
management function, a direct worker-to-worker lateral communication
scheme, and a data-proximity work assignment algorithm."
"""

from __future__ import annotations

import pytest

from repro.core.mapping import IdentityMapping, SeamMapping, UniversalMapping
from repro.core.overlap import OverlapConfig
from repro.core.phase import PhaseProgram, PhaseSpec
from repro.executive import ExecutiveCosts, Extensions, TaskSizer, run_program
from repro.sim.engine import Simulator
from repro.sim.machine import ExecutivePlacement, Machine
from repro.sim.trace import Trace

HEAVY_MGMT = ExecutiveCosts(0.5, 0.5, 0.5, 0.25, 0.25, 0.25, 0.01)
LIGHT_MGMT = ExecutiveCosts(0.05, 0.05, 0.05, 0.02, 0.02, 0.02, 0.001)


def chain(n_phases=3, n=128, mapping=None):
    mapping = mapping or IdentityMapping()
    return PhaseProgram.chain(
        [PhaseSpec(f"p{i}", n) for i in range(n_phases)],
        [mapping] * (n_phases - 1),
    )


class TestExtensionsValidation:
    def test_defaults_are_all_off(self):
        e = Extensions()
        assert e.middle_managers == 1
        assert not e.lateral_handoff and not e.data_proximity
        assert e.remote_penalty == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            Extensions(middle_managers=0)
        with pytest.raises(ValueError):
            Extensions(lateral_cost=-1)
        with pytest.raises(ValueError):
            Extensions(remote_penalty=0.5)
        with pytest.raises(ValueError):
            Extensions(proximity_scan=0)


class TestMultiExecutiveMachine:
    def test_pool_runs_jobs_in_parallel(self):
        sim, tr = Simulator(), Trace()
        m = Machine(sim, tr, 4, ExecutivePlacement.DEDICATED, n_executives=2)
        done = []
        m.submit_mgmt(5.0, lambda: done.append("a"))
        m.submit_mgmt(5.0, lambda: done.append("b"))
        sim.run()
        assert sim.now == 5.0  # parallel, not 10
        assert sorted(done) == ["a", "b"]
        assert m.mgmt_time() == 10.0

    def test_lane_pins_to_server(self):
        sim, tr = Simulator(), Trace()
        m = Machine(sim, tr, 4, ExecutivePlacement.DEDICATED, n_executives=2)
        m.submit_mgmt(5.0, lane=0)
        m.submit_mgmt(5.0, lane=0)
        sim.run()
        assert sim.now == 10.0  # serialized on the chief

    def test_lane_out_of_range(self):
        sim, tr = Simulator(), Trace()
        m = Machine(sim, tr, 4, ExecutivePlacement.DEDICATED, n_executives=2)
        with pytest.raises(ValueError):
            m.submit_mgmt(1.0, lane=2)

    def test_shared_needs_enough_workers(self):
        sim, tr = Simulator(), Trace()
        with pytest.raises(ValueError):
            Machine(sim, tr, 2, ExecutivePlacement.SHARED, n_executives=3)

    def test_shared_hosts_each_executive(self):
        sim, tr = Simulator(), Trace()
        m = Machine(sim, tr, 4, ExecutivePlacement.SHARED, n_executives=2)
        m.submit_mgmt(2.0, lane=0)
        m.submit_mgmt(2.0, lane=1)
        # both host workers are excluded while management runs
        assert [p.index for p in m.idle_processors()] == [2, 3]
        sim.run()
        assert tr.busy_time("P0", "mgmt") == 2.0
        assert tr.busy_time("P1", "mgmt") == 2.0

    def test_exec_resources_named(self):
        sim, tr = Simulator(), Trace()
        m = Machine(sim, tr, 4, ExecutivePlacement.DEDICATED, n_executives=3)
        assert m.exec_resources() == ["EXEC", "EXEC1", "EXEC2"]


class TestMiddleManagement:
    def test_relieves_executive_bottleneck(self):
        prog = chain()
        base = run_program(prog, 8, config=OverlapConfig(), costs=HEAVY_MGMT,
                           sizer=TaskSizer(4.0))
        pooled = run_program(prog, 8, config=OverlapConfig(), costs=HEAVY_MGMT,
                             sizer=TaskSizer(4.0), extensions=Extensions(middle_managers=4))
        assert pooled.granules_executed == base.granules_executed
        assert pooled.makespan < base.makespan * 0.7
        assert pooled.utilization > base.utilization

    def test_no_effect_when_executive_is_not_bottleneck(self):
        prog = chain(n=64)
        base = run_program(prog, 4, config=OverlapConfig(), costs=ExecutiveCosts.free())
        pooled = run_program(prog, 4, config=OverlapConfig(), costs=ExecutiveCosts.free(),
                             extensions=Extensions(middle_managers=4))
        assert pooled.makespan == pytest.approx(base.makespan)

    def test_correct_under_every_mapping(self):
        for mapping in (IdentityMapping(), UniversalMapping(), SeamMapping((-1, 0, 1))):
            prog = chain(mapping=mapping, n=96)
            r = run_program(prog, 8, config=OverlapConfig(), costs=HEAVY_MGMT,
                            sizer=TaskSizer(3.0), extensions=Extensions(middle_managers=3))
            assert r.granules_executed == 3 * 96

    def test_deterministic(self):
        prog = chain()
        a = run_program(prog, 8, config=OverlapConfig(), costs=HEAVY_MGMT,
                        extensions=Extensions(middle_managers=4), seed=5)
        b = run_program(prog, 8, config=OverlapConfig(), costs=HEAVY_MGMT,
                        extensions=Extensions(middle_managers=4), seed=5)
        assert a.makespan == b.makespan

    def test_shared_placement_pool(self):
        prog = chain(n=64)
        r = run_program(prog, 8, config=OverlapConfig(), costs=HEAVY_MGMT,
                        placement=ExecutivePlacement.SHARED,
                        extensions=Extensions(middle_managers=2))
        assert r.granules_executed == 3 * 64


class TestLateralHandoff:
    def test_handoffs_happen_for_identity(self):
        prog = chain()
        r = run_program(prog, 8, config=OverlapConfig(), costs=HEAVY_MGMT,
                        sizer=TaskSizer(4.0),
                        extensions=Extensions(lateral_handoff=True, lateral_cost=0.05))
        assert r.lateral_handoffs > 0
        assert r.granules_executed == 3 * 128

    def test_no_handoffs_for_universal(self):
        # universal successors are queued wholesale at overlap init; the
        # lateral path is identity-only by design
        prog = chain(mapping=UniversalMapping())
        r = run_program(prog, 8, config=OverlapConfig(), costs=HEAVY_MGMT,
                        extensions=Extensions(lateral_handoff=True))
        assert r.lateral_handoffs == 0
        assert r.granules_executed == 3 * 128

    def test_no_handoffs_under_barrier(self):
        prog = chain()
        r = run_program(prog, 8, config=OverlapConfig.barrier(), costs=HEAVY_MGMT,
                        extensions=Extensions(lateral_handoff=True))
        assert r.lateral_handoffs == 0

    def test_reduces_makespan_when_executive_bound(self):
        prog = chain()
        base = run_program(prog, 8, config=OverlapConfig(), costs=HEAVY_MGMT,
                           sizer=TaskSizer(4.0))
        lat = run_program(prog, 8, config=OverlapConfig(), costs=HEAVY_MGMT,
                          sizer=TaskSizer(4.0),
                          extensions=Extensions(lateral_handoff=True, lateral_cost=0.05))
        assert lat.makespan < base.makespan
        assert lat.mgmt_time < base.mgmt_time  # fewer executive round trips

    def test_combines_with_middle_management(self):
        prog = chain()
        r = run_program(prog, 8, config=OverlapConfig(), costs=HEAVY_MGMT,
                        sizer=TaskSizer(4.0),
                        extensions=Extensions(middle_managers=4, lateral_handoff=True,
                                              lateral_cost=0.05))
        assert r.granules_executed == 3 * 128
        assert r.lateral_handoffs > 0


class TestDataProximity:
    def test_policy_reduces_remote_penalty_cost(self):
        prog = chain(n_phases=4)
        base = run_program(prog, 8, config=OverlapConfig(), costs=LIGHT_MGMT,
                           sizer=TaskSizer(4.0),
                           extensions=Extensions(remote_penalty=2.0))
        prox = run_program(prog, 8, config=OverlapConfig(), costs=LIGHT_MGMT,
                           sizer=TaskSizer(4.0),
                           extensions=Extensions(data_proximity=True, remote_penalty=2.0))
        assert prox.granules_executed == base.granules_executed
        assert prox.makespan < base.makespan

    def test_penalty_one_means_no_timing_change_from_penalty(self):
        prog = chain(n=64)
        plain = run_program(prog, 4, config=OverlapConfig.barrier(), costs=LIGHT_MGMT)
        pen = run_program(prog, 4, config=OverlapConfig.barrier(), costs=LIGHT_MGMT,
                          extensions=Extensions(remote_penalty=1.0))
        assert plain.makespan == pytest.approx(pen.makespan)

    def test_lateral_tasks_are_local_by_construction(self):
        # lateral hand-off keeps the data on the worker: no penalty applies
        prog = chain(n_phases=4)
        prox = run_program(prog, 8, config=OverlapConfig(), costs=LIGHT_MGMT,
                           sizer=TaskSizer(4.0),
                           extensions=Extensions(data_proximity=True, remote_penalty=2.0))
        lat = run_program(prog, 8, config=OverlapConfig(), costs=LIGHT_MGMT,
                          sizer=TaskSizer(4.0),
                          extensions=Extensions(data_proximity=True, remote_penalty=2.0,
                                                lateral_handoff=True))
        assert lat.makespan < prox.makespan
        assert lat.lateral_handoffs > 0
