"""Tests for the discrete-event engine."""

from __future__ import annotations

import pytest

from repro.sim.engine import EventQueue, Simulator


class TestEventQueue:
    def test_orders_by_time(self):
        q = EventQueue()
        order = []
        q.push(2.0, lambda: order.append("b"))
        q.push(1.0, lambda: order.append("a"))
        q.push(3.0, lambda: order.append("c"))
        while (ev := q.pop()) is not None:
            ev.callback()
        assert order == ["a", "b", "c"]

    def test_priority_breaks_ties(self):
        q = EventQueue()
        order = []
        q.push(1.0, lambda: order.append("low"), priority=1)
        q.push(1.0, lambda: order.append("high"), priority=-1)
        q.push(1.0, lambda: order.append("mid"), priority=0)
        while (ev := q.pop()) is not None:
            ev.callback()
        assert order == ["high", "mid", "low"]

    def test_insertion_order_breaks_remaining_ties(self):
        q = EventQueue()
        order = []
        for i in range(5):
            q.push(1.0, lambda i=i: order.append(i))
        while (ev := q.pop()) is not None:
            ev.callback()
        assert order == [0, 1, 2, 3, 4]

    def test_cancellation(self):
        q = EventQueue()
        fired = []
        ev = q.push(1.0, lambda: fired.append(1))
        q.push(2.0, lambda: fired.append(2))
        ev.cancel()
        assert len(q) == 1
        got = q.pop()
        got.callback()
        assert fired == [2]

    def test_peek_time_skips_cancelled(self):
        q = EventQueue()
        ev = q.push(1.0, lambda: None)
        q.push(5.0, lambda: None)
        ev.cancel()
        assert q.peek_time() == 5.0

    def test_empty_pop(self):
        assert EventQueue().pop() is None
        assert EventQueue().peek_time() is None


class TestEventQueueFastPath:
    """The O(1) length counter and tombstone compaction."""

    def test_len_tracks_live_events_differentially(self):
        import random

        rng = random.Random(7)
        q = EventQueue()
        handles = []
        live = 0
        for step in range(5000):
            action = rng.random()
            if action < 0.5:
                handles.append(q.push(rng.random() * 100, lambda: None))
                live += 1
            elif action < 0.8 and handles:
                ev = handles.pop(rng.randrange(len(handles)))
                if not ev.cancelled:
                    live -= 1
                ev.cancel()
                ev.cancel()  # double-cancel must be a no-op
            else:
                ev = q.pop()
                if ev is not None:
                    live -= 1
                    handles = [h for h in handles if h is not ev]
            assert len(q) == live
        while q.pop() is not None:
            live -= 1
        assert live == 0 and len(q) == 0

    def test_cancel_after_pop_does_not_corrupt_len(self):
        q = EventQueue()
        ev = q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        assert q.pop() is ev
        ev.cancel()  # already delivered; must not decrement the live count
        assert len(q) == 1

    def test_compaction_shrinks_heap(self):
        q = EventQueue()
        handles = [q.push(float(i), lambda: None) for i in range(1000)]
        for h in handles[:900]:
            h.cancel()
        # >half the heap was tombstones, so compaction must have run
        assert len(q) == 100
        assert len(q._heap) < 1000
        # tombstones accumulated since the last rebuild stay a minority
        assert sum(e.cancelled for e in q._heap) * 2 <= len(q._heap)

    def test_compaction_preserves_pop_order(self):
        # (time, priority, seq) is a total order, so mass cancellation —
        # which triggers an O(n) heap rebuild — must still pop survivors
        # in exactly sorted-key order
        import random

        rng = random.Random(11)
        times = [rng.random() * 50 for _ in range(800)]
        doomed = set(rng.sample(range(800), 700))

        q = EventQueue()
        handles = [q.push(t, lambda: None, priority=i % 3) for i, t in enumerate(times)]
        expected = sorted(
            (h.time, h.priority, h.seq)
            for i, h in enumerate(handles)
            if i not in doomed
        )
        for i in doomed:
            handles[i].cancel()
        assert len(q._heap) < 800  # compaction ran

        popped = []
        while (ev := q.pop()) is not None:
            popped.append((ev.time, ev.priority, ev.seq))
        assert popped == expected


class TestSimulator:
    def test_run_advances_clock(self):
        sim = Simulator()
        sim.schedule(3.5, lambda: None)
        assert sim.run() == 3.5
        assert sim.now == 3.5

    def test_schedule_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(2.0, lambda: sim.schedule(1.0, lambda: None))
        with pytest.raises(ValueError):
            sim.run()

    def test_schedule_after_negative_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule_after(-1.0, lambda: None)

    def test_events_can_schedule_events(self):
        sim = Simulator()
        order = []

        def first():
            order.append("first")
            sim.schedule_after(1.0, lambda: order.append("second"))

        sim.schedule(1.0, first)
        sim.run()
        assert order == ["first", "second"]
        assert sim.now == 2.0

    def test_until_stops_early(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(10.0, lambda: fired.append(10))
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.now == 5.0
        sim.run()  # finish the rest
        assert fired == [1, 10]

    def test_max_events_guard(self):
        sim = Simulator()

        def loop():
            sim.schedule_after(0.0, loop)

        sim.schedule(0.0, loop)
        with pytest.raises(RuntimeError):
            sim.run(max_events=100)

    def test_stop_requests_exit(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: (fired.append(1), sim.stop()))
        sim.schedule(2.0, lambda: fired.append(2))
        sim.run()
        assert fired == [1]

    def test_not_reentrant(self):
        sim = Simulator()
        errors = []

        def inner():
            try:
                sim.run()
            except RuntimeError as e:
                errors.append(e)

        sim.schedule(1.0, inner)
        sim.run()
        assert len(errors) == 1

    def test_events_processed_counter(self):
        sim = Simulator()
        for t in (1.0, 2.0, 3.0):
            sim.schedule(t, lambda: None)
        sim.run()
        assert sim.events_processed == 3

    def test_pending(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        ev = sim.schedule(2.0, lambda: None)
        ev.cancel()
        assert sim.pending() == 1
