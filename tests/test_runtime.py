"""Tests for the threaded runtime: functional correctness of overlap."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.core.mapping import IdentityMapping, SeamMapping, UniversalMapping
from repro.core.overlap import OverlapPolicy
from repro.runtime import KernelPhase, ThreadedExecutor, run_fragment_threaded
from repro.workloads.fragments import (
    forward_indirect_fragment,
    identity_fragment,
    reverse_indirect_fragment,
    universal_fragment,
)

FRAGMENTS = [
    ("universal", lambda: universal_fragment(300)),
    ("identity", lambda: identity_fragment(300)),
    ("reverse", lambda: reverse_indirect_fragment(200, fan_in=6)),
    ("forward", lambda: forward_indirect_fragment(240, 200)),
]


@pytest.mark.parametrize("name,make", FRAGMENTS)
@pytest.mark.parametrize("policy", [OverlapPolicy.NONE, OverlapPolicy.NEXT_PHASE])
def test_threaded_matches_sequential_reference(name, make, policy):
    produced, expected = run_fragment_threaded(make(), n_workers=8, policy=policy, seed=5)
    for key, val in expected.items():
        assert np.allclose(produced[key], val), f"{name}/{policy.value}: {key} corrupted"


@pytest.mark.parametrize("workers", [1, 2, 16])
def test_worker_count_does_not_change_results(workers):
    frag = identity_fragment(256)
    produced, expected = run_fragment_threaded(frag, n_workers=workers, seed=2)
    assert np.allclose(produced["C"], expected["C"])


def test_overlap_actually_happens():
    """With NEXT_PHASE, two phases must be in flight simultaneously.

    The kernels sleep (releasing the GIL) so the phase-boundary overlap
    window is macroscopic and the concurrency is guaranteed, not racy.
    """
    import time

    n = 48

    def sleepy(i, arrays):
        time.sleep(0.002)

    executor = ThreadedExecutor(n_workers=8, policy=OverlapPolicy.NEXT_PHASE)
    executor.execute(
        [KernelPhase("one", n, sleepy), KernelPhase("two", n, sleepy)],
        [UniversalMapping()],
        {},
    )
    assert executor.max_phases_in_flight >= 2


def test_barrier_never_overlaps():
    frag = universal_fragment(300)
    executor = ThreadedExecutor(n_workers=8, policy=OverlapPolicy.NONE)
    rng = np.random.default_rng(0)
    inputs = frag.make_inputs(rng)
    program = frag.program
    phases = [
        KernelPhase(n, program.phases[n].n_granules, frag.kernels[n])
        for n in program.phase_sequence()
    ]
    mappings = [program.mapping_between(a, b) for a, b, _ in program.adjacent_pairs()]
    executor.execute(phases, mappings, inputs)
    assert executor.max_phases_in_flight == 1


def test_kernel_exception_propagates():
    def boom(i, arrays):
        raise RuntimeError("kernel failure")

    executor = ThreadedExecutor(n_workers=4)
    with pytest.raises(RuntimeError, match="kernel failure"):
        executor.execute([KernelPhase("p", 8, boom)], [], {})


def test_mapping_count_validated():
    executor = ThreadedExecutor(n_workers=2)
    with pytest.raises(ValueError):
        executor.execute(
            [KernelPhase("p", 1, lambda i, a: None)], [IdentityMapping()], {}
        )


def test_fragment_without_kernels_rejected():
    from repro.workloads.fragments import Fragment

    frag = universal_fragment(8)
    bare = Fragment(frag.program, frag.reference, frag.make_inputs, kernels=None)
    with pytest.raises(ValueError):
        run_fragment_threaded(bare)


def test_worker_count_validation():
    with pytest.raises(ValueError):
        ThreadedExecutor(n_workers=0)


def test_seam_mapped_checkerboard_sor_threaded():
    """Overlapped red/black SOR sweeps on threads equal the solver exactly.

    Granules are grid rows; the seam mapping with offsets (-1, 0, 1)
    releases a black row only once its red row and both neighbours are
    done — the paper's foreseen checkerboard seam.  A red-row kernel
    writes only red cells and reads only black cells (and vice versa), so
    any seam-respecting interleaving must reproduce the full-array sweep
    bit for bit.
    """
    from repro.workloads.checkerboard import CheckerboardSOR

    n = 24
    n_iterations = 3
    reference = CheckerboardSOR(n)
    reference.set_boundary(top=1.0, left=-0.5)
    omega = reference.omega

    u = reference.u.copy()
    f = reference.f.copy()
    arrays = {"u": u}
    col = np.arange(1, n + 1)

    def sweep_row(parity: int):
        def kernel(i: int, a: dict) -> None:
            uu = a["u"]
            r = i + 1
            mask = (r + col) % 2 == parity
            nb = uu[r - 1, 1:-1] + uu[r + 1, 1:-1] + uu[r, :-2] + uu[r, 2:]
            gs = 0.25 * (nb - f[i])
            row = uu[r, 1:-1]
            row[mask] = (1.0 - omega) * row[mask] + omega * gs[mask]

        return kernel

    phases = []
    mappings = []
    for t in range(n_iterations):
        phases.append(KernelPhase(f"red{t}", n, sweep_row(0)))
        phases.append(KernelPhase(f"black{t}", n, sweep_row(1)))
    for _ in range(len(phases) - 1):
        mappings.append(SeamMapping((-1, 0, 1)))

    executor = ThreadedExecutor(n_workers=8, policy=OverlapPolicy.NEXT_PHASE)
    executor.execute(phases, mappings, arrays)

    for _ in range(n_iterations):
        reference.iterate()
    assert np.array_equal(arrays["u"], reference.u)


def test_three_phase_chain_threaded():
    """A 3-phase identity pipeline: B=A, C=B, D=C."""
    n = 200
    phases = [
        KernelPhase("ab", n, lambda i, a: a["B"].__setitem__(i, a["A"][i])),
        KernelPhase("bc", n, lambda i, a: a["C"].__setitem__(i, a["B"][i])),
        KernelPhase("cd", n, lambda i, a: a["D"].__setitem__(i, a["C"][i])),
    ]
    rng = np.random.default_rng(3)
    arrays = {"A": rng.random(n), "B": np.zeros(n), "C": np.zeros(n), "D": np.zeros(n)}
    expected = arrays["A"].copy()
    executor = ThreadedExecutor(n_workers=6, policy=OverlapPolicy.NEXT_PHASE)
    executor.execute(phases, [IdentityMapping(), IdentityMapping()], arrays)
    assert np.array_equal(arrays["D"], expected)


@st.composite
def _chain_spec(draw):
    n_phases = draw(st.integers(2, 4))
    n = draw(st.integers(6, 40))
    kinds = [draw(st.sampled_from(["identity", "universal", "seam"])) for _ in range(n_phases - 1)]
    workers = draw(st.integers(1, 8))
    return n_phases, n, kinds, workers


@settings(max_examples=25, deadline=None)
@given(_chain_spec(), st.integers(0, 999))
def test_random_threaded_chains_equal_sequential(spec, seed):
    """Random identity/universal/seam chains on threads reproduce the
    sequential result exactly — the functional half of the overlap
    theorem, fuzzed."""
    n_phases, n, kinds, workers = spec
    rng = np.random.default_rng(seed)
    x0 = rng.random(n)

    arrays = {"x0": x0.copy()}
    for k in range(1, n_phases):
        arrays[f"x{k}"] = np.zeros(n)

    def make_kernel(k: int, kind_in: str):
        src, dst = f"x{k - 1}", f"x{k}"
        if kind_in == "seam":
            def kernel(i, a):
                lo, hi = max(0, i - 1), min(n, i + 2)
                a[dst][i] = a[src][lo:hi].sum() / (hi - lo) + 0.01 * k
        else:  # identity and universal both read only element i (or nothing)
            def kernel(i, a):
                a[dst][i] = 2.0 * a[src][i] + k
        return kernel

    phases = [
        KernelPhase(
            f"p{k}", n, make_kernel(k, kinds[k - 1]) if k > 0 else (lambda i, a: None)
        )
        for k in range(n_phases)
    ]
    mappings = []
    for kind in kinds:
        if kind == "identity":
            mappings.append(IdentityMapping())
        elif kind == "universal":
            # universal is only SAFE when the successor reads nothing the
            # predecessor writes; our kernels do read, so declare identity
            # instead — 'universal' here only varies the chain shape
            mappings.append(IdentityMapping())
        else:
            mappings.append(SeamMapping((-1, 0, 1)))

    # sequential reference
    ref = {k: v.copy() for k, v in arrays.items()}
    for k in range(1, n_phases):
        kernel = phases[k].kernel
        for i in range(n):
            kernel(i, ref)

    executor = ThreadedExecutor(n_workers=workers, policy=OverlapPolicy.NEXT_PHASE)
    executor.execute(phases, mappings, arrays)
    for key in ref:
        assert np.array_equal(arrays[key], ref[key]), key
