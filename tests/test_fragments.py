"""Tests for the paper's Fortran fragments: semantics and structure."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.mapping import MappingKind
from repro.workloads.fragments import (
    forward_indirect_fragment,
    identity_fragment,
    reverse_indirect_fragment,
    universal_fragment,
)

ALL_FRAGMENTS = [
    ("universal", lambda: universal_fragment(32)),
    ("identity", lambda: identity_fragment(32)),
    ("reverse", lambda: reverse_indirect_fragment(32, fan_in=4)),
    ("forward", lambda: forward_indirect_fragment(40, 32)),
]


@pytest.mark.parametrize("name,make", ALL_FRAGMENTS)
def test_fragment_has_two_phases_and_kernels(name, make):
    f = make()
    assert len(f.program.phase_sequence()) == 2
    assert f.kernels is not None
    for phase_name in f.program.phase_sequence():
        assert phase_name in f.kernels


@pytest.mark.parametrize("name,make", ALL_FRAGMENTS)
def test_kernels_reproduce_reference_sequentially(name, make):
    """Running kernels granule by granule, phase by phase, must equal the
    vectorized reference."""
    f = make()
    rng = np.random.default_rng(7)
    inputs = f.make_inputs(rng)
    expected = f.reference({k: v.copy() for k, v in inputs.items()})
    arrays = {k: v.copy() for k, v in inputs.items()}
    for phase_name in f.program.phase_sequence():
        spec = f.program.phases[phase_name]
        for g in range(spec.n_granules):
            f.kernels[phase_name](g, arrays)
    for key, val in expected.items():
        assert np.allclose(arrays[key], val), f"{name}: array {key} diverged"


def test_fragment_mappings_match_kinds():
    cases = {
        "universal": MappingKind.UNIVERSAL,
        "identity": MappingKind.IDENTITY,
        "reverse": MappingKind.REVERSE_INDIRECT,
        "forward": MappingKind.FORWARD_INDIRECT,
    }
    for name, make in ALL_FRAGMENTS:
        f = make()
        (a, b, _) = f.program.adjacent_pairs()[0]
        assert f.program.mapping_between(a, b).kind is cases[name], name


def test_reverse_fragment_map_generator_shape():
    f = reverse_indirect_fragment(16, fan_in=10)
    rng = np.random.default_rng(0)
    m = f.program.map_generators["IMAP"](rng)
    assert m.shape == (10, 16)
    assert m.min() >= 0 and m.max() < 16


def test_forward_fragment_map_generator_shape():
    f = forward_indirect_fragment(24, 16)
    rng = np.random.default_rng(0)
    m = f.program.map_generators["FMAP"](rng)
    assert m.shape == (24,)
    assert m.min() >= 0 and m.max() < 16


def test_fragments_run_on_executive():
    from repro.core.overlap import OverlapConfig
    from repro.executive import run_program

    for name, make in ALL_FRAGMENTS:
        f = make()
        r = run_program(f.program, 4, config=OverlapConfig(), seed=1)
        assert r.granules_executed == f.program.total_granules(), name
