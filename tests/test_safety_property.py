"""The keystone property: classification never authorizes unsafe overlap.

The classifier inspects two phases' declared footprints and names an
enablement mapping; the predicate machinery independently checks the
paper's overlap theorem (every enabled successor granule must be
PARALLEL with every uncompleted current granule).  If the classifier
ever names a mapping the theorem rejects, the system would corrupt data
while claiming safety — so we fuzz random footprint pairs and require:

    classify_pair(p, q).kind overlappable
        ⟹  overlap_is_safe(p, q, build_mapping(...)) is True.

The converse need not hold (the classifier is allowed to be
conservative).
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.access import (
    AccessPattern,
    AffineIndex,
    AllIndex,
    ArrayRef,
    ConstIndex,
    MappedIndex,
)
from repro.core.classifier import build_mapping, classify_pair
from repro.core.mapping import MappingKind
from repro.core.phase import PhaseSpec
from repro.core.predicate import overlap_is_safe

ARRAYS = ["A", "B", "C"]
N = 16
FAN = 2


@st.composite
def _index(draw):
    kind = draw(st.sampled_from(["ident", "offset", "mapped", "fanned", "all", "const"]))
    if kind == "ident":
        return AffineIndex(1, 0)
    if kind == "offset":
        return AffineIndex(1, draw(st.integers(-2, 2)))
    if kind == "mapped":
        return MappedIndex("M1", fan_in=1)
    if kind == "fanned":
        return MappedIndex("M2", fan_in=FAN)
    if kind == "all":
        return AllIndex()
    return ConstIndex(draw(st.integers(0, N - 1)))


@st.composite
def _pattern(draw):
    n_reads = draw(st.integers(0, 3))
    n_writes = draw(st.integers(0, 2))
    reads = tuple(
        ArrayRef(draw(st.sampled_from(ARRAYS)), draw(_index())) for _ in range(n_reads)
    )
    writes = tuple(
        ArrayRef(draw(st.sampled_from(ARRAYS)), draw(_index())) for _ in range(n_writes)
    )
    return AccessPattern(reads=reads, writes=writes)


def _intra_phase_ok(pattern: AccessPattern) -> bool:
    """Discard phases that violate the paper's intra-phase axiom
    (distinct granules of one phase must themselves be parallel) —
    such phases could not be executed in parallel at all."""
    from repro.core.predicate import check_intra_phase

    spec = PhaseSpec("tmp", N, access=pattern)
    maps = {
        "M1": np.arange(N) % N,
        "M2": np.vstack([np.arange(N), (np.arange(N) + 3) % N]),
    }
    try:
        return check_intra_phase(spec, maps=maps)
    except KeyError:
        return False


@settings(max_examples=300, deadline=None)
@given(_pattern(), _pattern(), st.integers(0, 9999))
def test_classifier_never_authorizes_unsafe_overlap(pat_a, pat_b, seed):
    rng = np.random.default_rng(seed)
    maps = {
        "M1": rng.integers(0, N, size=N),
        "M2": rng.integers(0, N, size=(FAN, N)),
    }
    if not _intra_phase_ok(pat_a) or not _intra_phase_ok(pat_b):
        return  # phases that are not internally parallel are out of scope
    pred = PhaseSpec("pred", N, access=pat_a)
    succ = PhaseSpec("succ", N, access=pat_b)
    verdict = classify_pair(pred, succ)
    if not verdict.kind.overlappable:
        return  # conservative refusal is always fine
    mapping = build_mapping(verdict)
    report = overlap_is_safe(pred, succ, mapping, maps=maps, sample_limit=2048)
    assert report.safe, (
        f"classifier said {verdict.kind.value} ({verdict.reason}) but the overlap "
        f"theorem found violations {report.violations} "
        f"for pred={pat_a} succ={pat_b}"
    )
