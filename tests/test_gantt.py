"""Tests for ASCII Gantt rendering."""

from __future__ import annotations

import pytest

from repro.metrics.gantt import render_gantt
from repro.sim.trace import Interval, Trace


def simple_trace() -> Trace:
    tr = Trace()
    tr.add_interval(Interval("P0", 0.0, 5.0, "compute", "alpha"))
    tr.add_interval(Interval("P1", 5.0, 10.0, "compute", "beta"))
    tr.add_interval(Interval("EXEC", 0.0, 1.0, "mgmt", "assign"))
    tr.add_interval(Interval("EXEC", 4.0, 5.0, "serial", "decide"))
    return tr


class TestRenderGantt:
    def test_rows_and_ordering(self):
        txt = render_gantt(simple_trace(), width=10)
        lines = txt.splitlines()
        assert lines[1].startswith("P0")
        assert lines[2].startswith("P1")
        assert lines[3].startswith("EXEC")

    def test_phase_initial_letters(self):
        txt = render_gantt(simple_trace(), width=10)
        p0 = next(l for l in txt.splitlines() if l.startswith("P0"))
        p1 = next(l for l in txt.splitlines() if l.startswith("P1"))
        assert "a" in p0 and "b" not in p0
        assert "b" in p1 and p1.index("b") > p0.index("a")

    def test_mgmt_and_serial_chars(self):
        txt = render_gantt(simple_trace(), width=10)
        ex = next(l for l in txt.splitlines() if l.startswith("EXEC"))
        assert "m" in ex and "s" in ex

    def test_idle_dots(self):
        txt = render_gantt(simple_trace(), width=10)
        p0 = next(l for l in txt.splitlines() if l.startswith("P0"))
        assert p0.rstrip("|").endswith(".....")

    def test_window_restriction(self):
        txt = render_gantt(simple_trace(), width=10, t0=0.0, t1=5.0)
        p1 = next(l for l in txt.splitlines() if l.startswith("P1"))
        assert "b" not in p1  # beta lies outside the window

    def test_resource_selection(self):
        txt = render_gantt(simple_trace(), width=10, resources=["P1"])
        assert "P0" not in txt and "EXEC" not in txt

    def test_empty_trace(self):
        assert render_gantt(Trace()) == "(empty trace)"

    def test_width_validation(self):
        with pytest.raises(ValueError):
            render_gantt(simple_trace(), width=0)

    def test_row_width_constant(self):
        txt = render_gantt(simple_trace(), width=17)
        rows = [l for l in txt.splitlines()[1:]]
        widths = {len(l[l.index("|") :]) for l in rows}
        assert widths == {19}  # 17 cells + two pipes

    def test_from_real_run(self):
        from repro.core.mapping import IdentityMapping
        from repro.core.overlap import OverlapConfig
        from repro.executive import run_program
        from tests.conftest import two_phase_program

        r = run_program(two_phase_program(IdentityMapping(), n=32), 4, config=OverlapConfig())
        txt = render_gantt(r.trace, width=40)
        assert "P0" in txt and "EXEC" in txt
        assert "A"[0] in txt  # phase letters present
