"""Tests for trace interval recording and utilization timelines."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.events import EventKind, LogRecord
from repro.sim.trace import Interval, Trace, TraceError, merge_intervals, utilization_timeline


class TestInterval:
    def test_duration(self):
        assert Interval("P0", 1.0, 3.5).duration == 2.5

    def test_inverted_rejected(self):
        with pytest.raises(ValueError):
            Interval("P0", 3.0, 1.0)

    def test_overlaps(self):
        a = Interval("P0", 0.0, 2.0)
        assert a.overlaps(Interval("P0", 1.0, 3.0))
        assert not a.overlaps(Interval("P0", 2.0, 3.0))


class TestLogRecord:
    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            LogRecord(-1.0, EventKind.NOTE, "x")


class TestMergeIntervals:
    def test_merges_overlap_and_adjacency(self):
        got = merge_intervals([(0, 2), (1, 3), (3, 4), (10, 11)])
        assert got == [(0, 4), (10, 11)]

    def test_drops_empty(self):
        assert merge_intervals([(1, 1), (2, 2)]) == []

    def test_empty_input(self):
        assert merge_intervals([]) == []

    def test_touching_endpoints_merge(self):
        # [0,1) and [1,2) share only the boundary point; they still merge
        # into one span (half-open intervals leave no gap between them)
        assert merge_intervals([(0, 1), (1, 2)]) == [(0, 2)]

    def test_nested_interval_absorbed(self):
        assert merge_intervals([(0, 10), (2, 5)]) == [(0, 10)]
        assert merge_intervals([(2, 5), (0, 10)]) == [(0, 10)]

    def test_duplicate_intervals(self):
        assert merge_intervals([(1, 3), (1, 3)]) == [(1, 3)]

    def test_unsorted_input(self):
        assert merge_intervals([(5, 6), (0, 1), (0.5, 2)]) == [(0, 2), (5, 6)]


class TestTrace:
    def test_begin_end_records_interval(self):
        tr = Trace()
        tr.begin("P0", 1.0, "compute", "taskA")
        iv = tr.end("P0", 4.0, "compute")
        assert iv.duration == 3.0
        assert tr.busy_time("P0", "compute") == 3.0

    def test_double_begin_rejected(self):
        tr = Trace()
        tr.begin("P0", 0.0)
        with pytest.raises(RuntimeError):
            tr.begin("P0", 1.0)

    def test_end_without_begin_rejected(self):
        with pytest.raises(RuntimeError):
            Trace().end("P0", 1.0)

    def test_trace_error_is_runtime_error(self):
        assert issubclass(TraceError, RuntimeError)

    def test_double_begin_message_names_open_interval(self):
        tr = Trace()
        tr.begin("P0", 2.5, "compute", "taskA")
        with pytest.raises(TraceError, match=r"since t=2\.5") as exc:
            tr.begin("P0", 3.0, "compute")
        assert "taskA" in str(exc.value)

    def test_end_wrong_category_lists_open_categories(self):
        tr = Trace()
        tr.begin("EXEC", 0.0, "mgmt")
        with pytest.raises(TraceError, match="open categories") as exc:
            tr.end("EXEC", 1.0, "compute")
        assert "mgmt" in str(exc.value)

    def test_end_with_nothing_open_says_so(self):
        with pytest.raises(TraceError, match="no interval of any category"):
            Trace().end("P0", 1.0)

    def test_categories_independent(self):
        tr = Trace()
        tr.begin("P0", 0.0, "compute")
        tr.begin("P0", 0.0, "mgmt")  # same resource, different category: fine
        tr.end("P0", 1.0, "compute")
        tr.end("P0", 2.0, "mgmt")
        assert tr.busy_time("P0", "compute") == 1.0
        assert tr.busy_time("P0", "mgmt") == 2.0
        # merged across categories
        assert tr.busy_time("P0") == 2.0

    def test_span_and_makespan(self):
        tr = Trace()
        tr.add_interval(Interval("P0", 1.0, 2.0))
        tr.add_interval(Interval("P1", 0.5, 5.0))
        assert tr.span() == (0.5, 5.0)
        assert tr.makespan() == 5.0

    def test_empty_trace(self):
        tr = Trace()
        assert tr.span() == (0.0, 0.0)
        assert tr.busy_time() == 0.0
        assert tr.resources() == []

    def test_records_of(self):
        tr = Trace()
        tr.log(1.0, EventKind.PHASE_START, "a")
        tr.log(2.0, EventKind.TASK_START, "P0")
        tr.log(3.0, EventKind.PHASE_START, "b")
        assert [r.subject for r in tr.records_of(EventKind.PHASE_START)] == ["a", "b"]


class TestUtilizationTimeline:
    def test_simple_step_function(self):
        tr = Trace()
        tr.add_interval(Interval("P0", 0.0, 2.0))
        tr.add_interval(Interval("P1", 1.0, 3.0))
        times, counts = utilization_timeline(tr, 2)
        assert list(times) == [0.0, 1.0, 2.0, 3.0]
        assert list(counts) == [1, 2, 1, 0]

    def test_empty(self):
        times, counts = utilization_timeline(Trace(), 4)
        assert list(counts) == [0]

    def test_coincident_boundaries(self):
        tr = Trace()
        tr.add_interval(Interval("P0", 0.0, 1.0))
        tr.add_interval(Interval("P1", 1.0, 2.0))
        times, counts = utilization_timeline(tr, 2)
        # at t=1 the -1 and +1 cancel: still one busy processor
        assert list(times) == [0.0, 1.0, 2.0]
        assert list(counts) == [1, 1, 0]

    def test_category_filter(self):
        tr = Trace()
        tr.add_interval(Interval("P0", 0.0, 1.0, "compute"))
        tr.add_interval(Interval("P0", 1.0, 5.0, "mgmt"))
        _, counts = utilization_timeline(tr, 1, category="compute")
        assert max(counts) == 1
        _, counts = utilization_timeline(tr, 1, category="mgmt")
        assert max(counts) == 1


@settings(max_examples=100, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(0, 4),
            st.floats(0, 100, allow_nan=False),
            st.floats(0, 50, allow_nan=False),
        ),
        max_size=30,
    )
)
def test_timeline_integral_equals_busy_time(raw):
    """The integral of the busy-count step function equals total busy time."""
    tr = Trace()
    for proc, start, dur in raw:
        tr.add_interval(Interval(f"P{proc}", start, start + dur))
    times, counts = utilization_timeline(tr, 5)
    if len(times) > 1:
        integral = float(np.sum(counts[:-1] * np.diff(times)))
    else:
        integral = 0.0
    total = sum(tr.busy_time(r) for r in tr.resources())
    # busy_time merges per-resource overlap; the timeline counts overlapping
    # intervals on one resource multiple times, so compare against raw sums
    raw_total = sum(d for _, _, d in raw)
    assert integral == pytest.approx(raw_total, rel=1e-9, abs=1e-9)
    assert total <= raw_total + 1e-9
