"""Tests for the enablement-mapping taxonomy."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.granule import GranuleSet
from repro.core.mapping import (
    ForwardIndirectMapping,
    IdentityMapping,
    MappingKind,
    NullMapping,
    ReverseIndirectMapping,
    SeamMapping,
    UniversalMapping,
)


class TestMappingKind:
    def test_overlappable(self):
        assert not MappingKind.NULL.overlappable
        for k in MappingKind:
            if k is not MappingKind.NULL:
                assert k.overlappable

    def test_easily_overlapped_is_universal_and_identity(self):
        easy = {k for k in MappingKind if k.easily_overlapped}
        assert easy == {MappingKind.UNIVERSAL, MappingKind.IDENTITY}

    def test_indirect_kinds(self):
        ind = {k for k in MappingKind if k.indirect}
        assert ind == {MappingKind.REVERSE_INDIRECT, MappingKind.FORWARD_INDIRECT}


class TestUniversal:
    def test_enabled_by_null_set(self):
        m = UniversalMapping()
        assert m.enabled_by(GranuleSet.empty(), 10, 8) == GranuleSet.universe(8)

    def test_required_is_empty(self):
        m = UniversalMapping()
        assert not m.required_for(GranuleSet.universe(8), 10, 8)


class TestIdentity:
    def test_enabled_mirrors_completed(self):
        m = IdentityMapping()
        done = GranuleSet.from_ranges([(0, 3), (5, 7)])
        assert m.enabled_by(done, 10, 10) == done

    def test_required_mirrors_successors(self):
        m = IdentityMapping()
        want = GranuleSet.from_ids([2, 9])
        assert m.required_for(want, 10, 10) == want

    def test_successor_space_larger(self):
        # successor granules beyond the predecessor space are free
        m = IdentityMapping()
        got = m.enabled_by(GranuleSet.from_ranges([(0, 2)]), 4, 8)
        assert got == GranuleSet.from_ranges([(0, 2), (4, 8)])

    def test_successor_space_smaller(self):
        m = IdentityMapping()
        got = m.enabled_by(GranuleSet.from_ranges([(0, 6)]), 8, 4)
        assert got == GranuleSet.universe(4)

    def test_newly_enabled_delta(self):
        m = IdentityMapping()
        before = GranuleSet.from_ranges([(0, 2)])
        after = GranuleSet.from_ranges([(0, 4)])
        assert m.newly_enabled(before, after, 8, 8) == GranuleSet.from_ranges([(2, 4)])


class TestNull:
    def test_nothing_until_everything(self):
        m = NullMapping()
        assert not m.enabled_by(GranuleSet.from_ranges([(0, 9)]), 10, 5)
        assert m.enabled_by(GranuleSet.universe(10), 10, 5) == GranuleSet.universe(5)

    def test_required_is_everything(self):
        m = NullMapping()
        assert m.required_for(GranuleSet.from_ids([0]), 10, 5) == GranuleSet.universe(10)
        assert not m.required_for(GranuleSet.empty(), 10, 5)

    def test_negative_serial_cost_rejected(self):
        with pytest.raises(ValueError):
            NullMapping(serial_cost=-1)


class TestReverseIndirect:
    def setup_method(self):
        # successor i needs predecessors IMAP[:, i]
        self.maps = {"IMAP": np.array([[0, 1, 2, 0], [1, 2, 3, 0]])}
        self.m = ReverseIndirectMapping("IMAP", fan_in=2)

    def test_enabled_requires_all_fan_in(self):
        done = GranuleSet.from_ranges([(0, 2)])  # {0,1}
        got = self.m.enabled_by(done, 4, 4, self.maps)
        # succ 0 needs {0,1} ok; succ 1 needs {1,2} no; succ 3 needs {0} ok
        assert got == GranuleSet.from_ids([0, 3])

    def test_required_union(self):
        got = self.m.required_for(GranuleSet.from_ids([1, 2]), 4, 4, self.maps)
        assert got == GranuleSet.from_ids([1, 2, 3])

    def test_required_empty_successors(self):
        assert not self.m.required_for(GranuleSet.empty(), 4, 4, self.maps)

    def test_missing_map_raises(self):
        with pytest.raises(KeyError):
            self.m.enabled_by(GranuleSet.empty(), 4, 4, None)

    def test_wrong_shape_raises(self):
        with pytest.raises(ValueError):
            self.m.enabled_by(GranuleSet.empty(), 4, 4, {"IMAP": np.zeros((3, 4), dtype=int)})

    def test_1d_map_accepted_for_fan_in_one(self):
        m = ReverseIndirectMapping("M", fan_in=1)
        got = m.enabled_by(GranuleSet.from_ids([2]), 3, 2, {"M": np.array([2, 0])})
        assert got == GranuleSet.from_ids([0])

    def test_fan_in_validation(self):
        with pytest.raises(ValueError):
            ReverseIndirectMapping("M", fan_in=0)

    def test_complete_predecessors_enable_everything(self):
        got = self.m.enabled_by(GranuleSet.universe(4), 4, 4, self.maps)
        assert got == GranuleSet.universe(4)


class TestForwardIndirect:
    def test_duplicates_need_all_writers(self):
        # predecessors 0 and 1 both write successor 2
        maps = {"FMAP": np.array([2, 2, 0])}
        m = ForwardIndirectMapping("FMAP")
        assert 2 not in m.enabled_by(GranuleSet.from_ids([0]), 3, 4, maps)
        assert 2 in m.enabled_by(GranuleSet.from_ids([0, 1]), 3, 4, maps)

    def test_untouched_successors_enabled_immediately(self):
        maps = {"FMAP": np.array([0, 1])}
        m = ForwardIndirectMapping("FMAP")
        got = m.enabled_by(GranuleSet.empty(), 2, 5, maps)
        assert got == GranuleSet.from_ranges([(2, 5)])

    def test_required_for(self):
        maps = {"FMAP": np.array([2, 2, 0, 1])}
        m = ForwardIndirectMapping("FMAP")
        assert m.required_for(GranuleSet.from_ids([2]), 4, 3, maps) == GranuleSet.from_ids([0, 1])
        assert m.required_for(GranuleSet.from_ids([1]), 4, 3, maps) == GranuleSet.from_ids([3])

    def test_shape_validation(self):
        m = ForwardIndirectMapping("FMAP")
        with pytest.raises(ValueError):
            m.enabled_by(GranuleSet.empty(), 3, 3, {"FMAP": np.array([0, 1])})

    def test_missing_map_raises(self):
        with pytest.raises(KeyError):
            ForwardIndirectMapping("F").enabled_by(GranuleSet.empty(), 2, 2, {})


class TestSeam:
    def test_stencil_enablement(self):
        m = SeamMapping((-1, 0, 1))
        done = GranuleSet.from_ranges([(0, 3)])
        # succ 0 needs {0,1}; succ 1 needs {0,1,2}; succ 2 needs {1,2,3}
        assert m.enabled_by(done, 8, 8) == GranuleSet.from_ranges([(0, 2)])

    def test_boundary_clamping(self):
        m = SeamMapping((-1, 0, 1))
        # last successor granule's +1 neighbour is clamped away
        done = GranuleSet.from_ranges([(6, 8)])
        assert 7 in m.enabled_by(done, 8, 8)

    def test_required_for(self):
        m = SeamMapping((-1, 0, 1))
        assert m.required_for(GranuleSet.from_ids([4]), 8, 8) == GranuleSet.from_ids([3, 4, 5])
        assert m.required_for(GranuleSet.from_ids([0]), 8, 8) == GranuleSet.from_ids([0, 1])

    def test_empty_offsets_rejected(self):
        with pytest.raises(ValueError):
            SeamMapping(())

    def test_offsets_deduplicated_and_sorted(self):
        assert SeamMapping((1, -1, 1, 0)).offsets == (-1, 0, 1)

    def test_full_completion_enables_all(self):
        m = SeamMapping((-2, 0, 2))
        assert m.enabled_by(GranuleSet.universe(6), 6, 6) == GranuleSet.universe(6)


# ---------------------------------------------------------------- properties
@st.composite
def _mapping_case(draw):
    n_pred = draw(st.integers(min_value=1, max_value=40))
    n_succ = draw(st.integers(min_value=1, max_value=40))
    kind = draw(st.sampled_from(["universal", "identity", "null", "reverse", "forward", "seam"]))
    rng = np.random.default_rng(draw(st.integers(min_value=0, max_value=10_000)))
    maps = None
    if kind == "universal":
        m = UniversalMapping()
    elif kind == "identity":
        m = IdentityMapping()
    elif kind == "null":
        m = NullMapping()
    elif kind == "reverse":
        fan = draw(st.integers(min_value=1, max_value=4))
        m = ReverseIndirectMapping("M", fan_in=fan)
        maps = {"M": rng.integers(0, n_pred, size=(fan, n_succ))}
    elif kind == "forward":
        m = ForwardIndirectMapping("M")
        maps = {"M": rng.integers(0, n_succ, size=n_pred)}
    else:
        offsets = tuple(draw(st.sets(st.integers(-3, 3), min_size=1, max_size=4)))
        m = SeamMapping(offsets)
    completed_ids = draw(st.sets(st.integers(0, n_pred - 1), max_size=n_pred))
    return m, n_pred, n_succ, maps, GranuleSet.from_ids(completed_ids)


@settings(max_examples=150, deadline=None)
@given(_mapping_case())
def test_enabled_monotone_in_completed(case):
    """More completed predecessors never disables a successor granule."""
    m, n_pred, n_succ, maps, completed = case
    before = m.enabled_by(completed, n_pred, n_succ, maps)
    after = m.enabled_by(GranuleSet.universe(n_pred), n_pred, n_succ, maps)
    assert before.issubset(after)
    assert after == GranuleSet.universe(n_succ)  # full completion enables all


@settings(max_examples=150, deadline=None)
@given(_mapping_case())
def test_forward_reverse_consistency(case):
    """enabled_by and required_for agree: a granule is enabled exactly
    when its required set is completed."""
    m, n_pred, n_succ, maps, completed = case
    enabled = m.enabled_by(completed, n_pred, n_succ, maps)
    for succ in range(n_succ):
        req = m.required_for(GranuleSet.from_ids([succ]), n_pred, n_succ, maps)
        should_be_enabled = req.issubset(completed)
        assert (succ in enabled) == should_be_enabled, (
            f"succ={succ} required={req!r} completed={completed!r}"
        )


class TestSeamGrid:
    def test_von_neumann_offsets(self):
        m = SeamMapping.grid(8)
        assert m.offsets == (-8, -1, 0, 1, 8)

    def test_moore_offsets(self):
        m = SeamMapping.grid(8, neighborhood="moore")
        assert m.offsets == (-9, -8, -7, -1, 0, 1, 7, 8, 9)

    def test_validation(self):
        with pytest.raises(ValueError):
            SeamMapping.grid(0)
        with pytest.raises(ValueError):
            SeamMapping.grid(4, neighborhood="hex")

    def test_block_enablement_semantics(self):
        # a 4x4 block grid: block 5 (row 1, col 1) needs blocks 1, 4, 5, 6, 9
        m = SeamMapping.grid(4)
        need = m.required_for(GranuleSet.from_ids([5]), 16, 16)
        assert need == GranuleSet.from_ids([1, 4, 5, 6, 9])

    def test_runs_on_executive(self):
        from repro.core.overlap import OverlapConfig
        from repro.core.phase import PhaseProgram, PhaseSpec
        from repro.executive import ExecutiveCosts, run_program

        bx = 6
        prog = PhaseProgram.chain(
            [PhaseSpec("sweep_a", bx * bx), PhaseSpec("sweep_b", bx * bx)],
            [SeamMapping.grid(bx)],
        )
        rb = run_program(prog, 8, config=OverlapConfig.barrier(), costs=ExecutiveCosts.free())
        ro = run_program(prog, 8, config=OverlapConfig(), costs=ExecutiveCosts.free())
        assert ro.granules_executed == rb.granules_executed == 2 * bx * bx
        assert ro.makespan <= rb.makespan
