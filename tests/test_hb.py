"""Tests for the whole-program happens-before engine (``repro.lint.hb``)."""

from __future__ import annotations

import pytest

from repro.core.classifier import PairClassification
from repro.core.mapping import MappingKind
from repro.lang import parse, verify
from repro.lint.hb import (
    ALL_RELATION,
    EMPTY_RELATION,
    MAX_OFFSETS,
    GranuleRelation,
    HappensBeforeEngine,
    compose,
    relation_of,
)


def _c(kind, offsets=(), map_name="", fan_in=1):
    return PairClassification(
        "p", "s", kind, offsets=offsets, map_name=map_name, fan_in=fan_in
    )


def engine_for(src: str) -> HappensBeforeEngine:
    program = parse(src)
    return HappensBeforeEngine(program, verify(program))


def window(*offsets: int) -> GranuleRelation:
    return GranuleRelation("window", offsets=frozenset(offsets))


class TestRelationOf:
    def test_universal_is_empty(self):
        assert relation_of(_c(MappingKind.UNIVERSAL)) is EMPTY_RELATION

    def test_null_is_all(self):
        assert relation_of(_c(MappingKind.NULL)) is ALL_RELATION

    def test_identity_is_zero_window(self):
        assert relation_of(_c(MappingKind.IDENTITY)) == window(0)

    def test_seam_keeps_offsets(self):
        assert relation_of(_c(MappingKind.SEAM, offsets=(-1, 0, 1))) == window(-1, 0, 1)

    def test_indirect_is_mapped(self):
        r = relation_of(_c(MappingKind.REVERSE_INDIRECT, map_name="IMAP", fan_in=4))
        assert r.kind == "mapped" and r.direction == "reverse" and r.fan == 4
        r = relation_of(_c(MappingKind.FORWARD_INDIRECT, map_name="JMAP"))
        assert r.kind == "mapped" and r.direction == "forward"

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError):
            GranuleRelation("sideways")


class TestCompose:
    def test_empty_absorbs_both_sides(self):
        assert compose(EMPTY_RELATION, ALL_RELATION) is EMPTY_RELATION
        assert compose(window(0), EMPTY_RELATION) is EMPTY_RELATION

    def test_opaque_absorbs(self):
        opaque = GranuleRelation("opaque")
        assert compose(opaque, ALL_RELATION).kind == "opaque"
        assert compose(window(0), opaque).kind == "opaque"

    def test_window_compose_is_sumset(self):
        assert compose(window(-1, 0, 1), window(0, 2)) == window(-1, 0, 1, 2, 3)

    def test_window_cap_degrades_to_opaque(self):
        wide = window(*range(MAX_OFFSETS))
        assert compose(wide, window(0, MAX_OFFSETS)).kind == "opaque"

    def test_all_through_window_stays_all(self):
        assert compose(ALL_RELATION, window(0)).kind == "all"
        assert compose(window(-1, 1), ALL_RELATION).kind == "all"
        assert compose(ALL_RELATION, ALL_RELATION).kind == "all"

    def test_all_through_mapped_depends_on_direction(self):
        reverse = GranuleRelation("mapped", map_name="M", fan=2, direction="reverse")
        forward = GranuleRelation("mapped", map_name="M", direction="forward")
        # every successor granule has fan-in sources -> still all
        assert compose(ALL_RELATION, reverse).kind == "all"
        # a forward map's columns may be empty -> no claim
        assert compose(ALL_RELATION, forward).kind == "opaque"
        # ...and symmetrically entering an "all" hop
        assert compose(forward, ALL_RELATION).kind == "all"
        assert compose(reverse, ALL_RELATION).kind == "opaque"

    def test_identity_is_neutral_for_mapped(self):
        mapped = GranuleRelation("mapped", map_name="M", fan=3, direction="reverse")
        assert compose(mapped, window(0)) == mapped
        assert compose(window(0), mapped) == mapped
        assert compose(mapped, window(1)).kind == "opaque"


PIPELINE = (
    "DEFINE PHASE a GRANULES=16 READS [ F(I) ] WRITES [ X(I) ]\n"
    "DEFINE PHASE b GRANULES=16 READS [ X(I-1) X(I) ] WRITES [ Y(I) ]\n"
    "DEFINE PHASE c GRANULES=16 READS [ Y(I) Y(I+1) ] WRITES [ Z(I) ]\n"
    "DISPATCH a ENABLE [ b/MAPPING=SEAM(-1,0) ]\n"
    "DISPATCH b ENABLE [ c/MAPPING=SEAM(0,1) ]\n"
    "DISPATCH c\n"
)


class TestEngineQueries:
    def test_reaches_follows_effective_edges_only(self):
        eng = engine_for(PIPELINE)
        assert eng.reaches("a", "b") and eng.reaches("b", "c") and eng.reaches("a", "c")
        assert not eng.reaches("c", "a")
        assert not eng.reaches("b", "a")

    def test_happens_before_composes_offset_windows(self):
        eng = engine_for(PIPELINE)
        # a->c offsets are the sumset {-1,0} + {0,1} = {-1,0,1}:
        # c granule j waits for a granules j-1, j, j+1
        assert eng.happens_before("a", 5, "c", 5)
        assert eng.happens_before("a", 4, "c", 5)
        assert eng.happens_before("a", 6, "c", 5)
        assert not eng.happens_before("a", 7, "c", 5)

    def test_direct_query_uses_declared_window(self):
        eng = engine_for(PIPELINE)
        assert eng.happens_before("a", 4, "b", 5)  # offset -1
        assert not eng.happens_before("a", 6, "b", 5)

    def test_barrier_pair_orders_everything(self):
        src = (
            "DEFINE PHASE a GRANULES=8 READS [ P(I) ] WRITES [ Q(*) ]\n"
            "DEFINE PHASE b GRANULES=8 READS [ Q(*) ] WRITES [ R(I) ]\n"
            "DISPATCH a\n"
            "DISPATCH b\n"
        )
        eng = engine_for(src)
        assert eng.happens_before("a", 7, "b", 0)
        assert eng.happens_before("a", 0, "b", 7)

    def test_stats_counts_edges(self):
        eng = engine_for(PIPELINE)
        s = eng.stats()
        assert s["phases"] == 3
        assert s["effective_edges"] == 2
        assert s["declared_edges"] == 2


class TestCycles:
    CONTRADICTION = (
        "DEFINE PHASE ping GRANULES=8 READS [ A(I) ] WRITES [ B(I) ]"
        " ENABLE [ pong/MAPPING=IDENTITY ]\n"
        "DEFINE PHASE pong GRANULES=8 READS [ B(I) ] WRITES [ A(I) ]"
        " ENABLE [ ping/MAPPING=IDENTITY ]\n"
        "DISPATCH ping ENABLE/BRANCHDEPENDENT\n"
        "DISPATCH pong ENABLE/BRANCHDEPENDENT\n"
    )

    def test_mutual_enable_is_a_cycle(self):
        cycles = engine_for(self.CONTRADICTION).cycles()
        assert len(cycles) == 1
        cyc = cycles[0]
        assert set(cyc.phases) == {"ping", "pong"}
        # IDENTITY o IDENTITY: each granule waits for itself
        assert cyc.relation.kind == "window" and 0 in cyc.relation.offsets
        assert "ping -> pong -> ping" == cyc.describe()

    def test_all_effective_loop_is_pipelining_not_a_cycle(self):
        # the backward GOTO realizes step -> step on a forward adjacency:
        # iterations are distinct occurrences, not a contradiction
        src = (
            "DEFINE PHASE step GRANULES=8 READS [ A(I) ] WRITES [ A(I) ]\n"
            "top:\n"
            "DISPATCH step ENABLE/BRANCHINDEPENDENT [ step/MAPPING=IDENTITY ]\n"
            "IF (K .EQ. 0) THEN GO TO top\n"
        )
        assert engine_for(src).cycles() == []

    def test_non_waiting_cycle_is_not_flagged(self):
        # mutual UNIVERSAL edges impose no waits -> no contradiction
        src = (
            "DEFINE PHASE ping GRANULES=8 ENABLE [ pong/MAPPING=UNIVERSAL ]\n"
            "DEFINE PHASE pong GRANULES=8 ENABLE [ ping/MAPPING=UNIVERSAL ]\n"
            "DISPATCH ping ENABLE/BRANCHDEPENDENT\n"
            "DISPATCH pong ENABLE/BRANCHDEPENDENT\n"
        )
        assert engine_for(src).cycles() == []


class TestRedundancy:
    CHAIN = (
        "DEFINE PHASE a GRANULES=8 READS [ X(I) ] WRITES [ Y(I) ]\n"
        "DEFINE PHASE b GRANULES=8 READS [ Y(*) ] WRITES [ Z(I) ]\n"
        "DEFINE PHASE c GRANULES=8 READS [ Z(*) ] WRITES [ W(I) ]\n"
        "DISPATCH a ENABLE [ b/MAPPING=NULL c/MAPPING=IDENTITY ]\n"
        "DISPATCH b\n"
        "DISPATCH c\n"
    )

    def test_transitively_implied_edge_found_with_witness(self):
        redundant = engine_for(self.CHAIN).redundant_declared_edges()
        assert len(redundant) == 1
        edge, witness = redundant[0]
        assert (edge.pred, edge.succ) == ("a", "c")
        assert witness == ["a", "b", "c"]

    def test_needed_edge_is_not_redundant(self):
        eng = engine_for(PIPELINE)
        assert eng.redundant_declared_edges() == []

    def test_duplicate_dispatch_of_same_pair_not_redundant(self):
        # the same pair dispatched on two paths: each declared edge's
        # "rest of the program" excludes ALL direct pred->succ edges
        src = (
            "DEFINE PHASE a GRANULES=8 READS [ X(I) ] WRITES [ Y(I) ]\n"
            "DEFINE PHASE b GRANULES=8 READS [ Y(I) ] WRITES [ Z(I) ]\n"
            "DISPATCH a ENABLE/BRANCHINDEPENDENT [ b/MAPPING=IDENTITY ]\n"
            "IF (K .EQ. 0) THEN GO TO again\n"
            "GOTO done\n"
            "again:\n"
            "DISPATCH b\n"
            "done:\n"
            "DISPATCH b\n"
        )
        assert engine_for(src).redundant_declared_edges() == []
