"""Tests for READS/WRITES access declarations and MAPPING=AUTO."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.access import AffineIndex, AllIndex, ConstIndex, MappedIndex
from repro.core.mapping import MappingKind
from repro.lang import ParseError, VerificationError, compile_program, parse, verify
from repro.lang.ast import IndexForm, MapDecl


class TestAccessParsing:
    def test_affine_forms(self):
        prog = parse(
            "DEFINE PHASE p GRANULES=4 READS [ A(I) B(I+2) C(I-3) ] WRITES [ D(I) ]"
        )
        d = prog.definitions()["p"]
        assert [(r.array, r.form, r.value) for r in d.reads] == [
            ("A", IndexForm.AFFINE, 0),
            ("B", IndexForm.AFFINE, 2),
            ("C", IndexForm.AFFINE, -3),
        ]
        assert d.declares_access

    def test_star_and_const(self):
        prog = parse("DEFINE PHASE p GRANULES=4 READS [ A(*) F(0) ]")
        d = prog.definitions()["p"]
        assert d.reads[0].form is IndexForm.ALL
        assert d.reads[1].form is IndexForm.CONST and d.reads[1].value == 0

    def test_mapped_forms(self):
        prog = parse(
            "MAP M FANIN=4\nDEFINE PHASE p GRANULES=4 READS [ A(M(I)) B(M(J,I)) ]"
        )
        d = prog.definitions()["p"]
        assert d.reads[0].form is IndexForm.MAPPED and d.reads[0].map_name == "M"
        assert d.reads[1].form is IndexForm.MAPPED_FAN

    def test_map_decl(self):
        prog = parse("MAP M FANIN=7\nMAP N\n")
        decls = prog.map_decls()
        assert decls["M"].fan_in == 7
        assert decls["N"].fan_in == 1

    def test_empty_access_lists_still_declare(self):
        prog = parse("DEFINE PHASE p GRANULES=4 READS [ ] WRITES [ ]")
        assert prog.definitions()["p"].declares_access

    def test_no_access_clause(self):
        prog = parse("DEFINE PHASE p GRANULES=4")
        assert not prog.definitions()["p"].declares_access

    def test_bad_map_index_rejected(self):
        with pytest.raises(ParseError):
            parse("DEFINE PHASE p GRANULES=4 READS [ A(M(K)) ]")
        with pytest.raises(ParseError):
            parse("DEFINE PHASE p GRANULES=4 READS [ A(M(J,K)) ]")


class TestAccessVerification:
    def test_undeclared_map_rejected(self):
        src = "DEFINE PHASE p GRANULES=4 READS [ A(M(I)) ]\nDISPATCH p\n"
        with pytest.raises(VerificationError, match="undeclared selection map"):
            verify(parse(src))

    def test_duplicate_map_rejected(self):
        with pytest.raises(VerificationError, match="duplicate map"):
            verify(parse("MAP M\nMAP M\n"))

    def test_bad_fanin_rejected(self):
        with pytest.raises(VerificationError, match="FANIN"):
            verify(parse("MAP M FANIN=0\n"))

    def test_auto_requires_footprints_on_both_sides(self):
        src = (
            "DEFINE PHASE a GRANULES=4 WRITES [ X(I) ]\n"
            "DEFINE PHASE b GRANULES=4\n"
            "DISPATCH a ENABLE [b/MAPPING=AUTO]\nDISPATCH b\n"
        )
        with pytest.raises(VerificationError, match="missing on 'b'"):
            verify(parse(src))

    def test_auto_inline_requires_footprint(self):
        src = "DEFINE PHASE a GRANULES=4\nDISPATCH a ENABLE/MAPPING=AUTO\n"
        with pytest.raises(VerificationError, match="READS/WRITES"):
            verify(parse(src))

    def test_define_time_auto_requires_footprint(self):
        src = (
            "DEFINE PHASE a GRANULES=4 ENABLE [b/MAPPING=AUTO]\n"
            "DEFINE PHASE b GRANULES=4 READS [ X(I) ]\n"
        )
        with pytest.raises(VerificationError, match="no\nREADS|no READS"):
            verify(parse(src))


class TestAutoCompilation:
    def _compile(self, src, **kw):
        return compile_program(src, **kw)

    def test_identity_derived(self):
        src = (
            "DEFINE PHASE a GRANULES=8 READS [ X(I) ] WRITES [ Y(I) ]\n"
            "DEFINE PHASE b GRANULES=8 READS [ Y(I) ] WRITES [ Z(I) ]\n"
            "DISPATCH a ENABLE [b/MAPPING=AUTO]\nDISPATCH b\n"
        )
        prog = self._compile(src)
        assert prog.mapping_between("a", "b").kind is MappingKind.IDENTITY

    def test_universal_derived(self):
        src = (
            "DEFINE PHASE a GRANULES=8 READS [ X(I) ] WRITES [ Y(I) ]\n"
            "DEFINE PHASE b GRANULES=8 READS [ P(I) ] WRITES [ Q(I) ]\n"
            "DISPATCH a ENABLE [b/MAPPING=AUTO]\nDISPATCH b\n"
        )
        prog = self._compile(src)
        assert prog.mapping_between("a", "b").kind is MappingKind.UNIVERSAL

    def test_seam_derived_with_offsets(self):
        src = (
            "DEFINE PHASE a GRANULES=8 WRITES [ U(I) ]\n"
            "DEFINE PHASE b GRANULES=8 READS [ U(I-1) U(I) U(I+1) ] WRITES [ V(I) ]\n"
            "DISPATCH a ENABLE [b/MAPPING=AUTO]\nDISPATCH b\n"
        )
        m = self._compile(src).mapping_between("a", "b")
        assert m.kind is MappingKind.SEAM
        assert m.offsets == (-1, 0, 1)

    def test_reverse_derived_with_fanin(self):
        src = (
            "MAP M FANIN=5\n"
            "DEFINE PHASE a GRANULES=8 WRITES [ X(I) ]\n"
            "DEFINE PHASE b GRANULES=8 READS [ X(M(J,I)) ] WRITES [ Y(I) ]\n"
            "DISPATCH a ENABLE [b/MAPPING=AUTO]\nDISPATCH b\n"
        )
        m = self._compile(src).mapping_between("a", "b")
        assert m.kind is MappingKind.REVERSE_INDIRECT
        assert m.map_name == "M" and m.fan_in == 5

    def test_forward_derived(self):
        src = (
            "MAP F\n"
            "DEFINE PHASE a GRANULES=8 WRITES [ X(F(I)) ]\n"
            "DEFINE PHASE b GRANULES=8 READS [ X(I) ] WRITES [ Y(I) ]\n"
            "DISPATCH a ENABLE [b/MAPPING=AUTO]\nDISPATCH b\n"
        )
        m = self._compile(src).mapping_between("a", "b")
        assert m.kind is MappingKind.FORWARD_INDIRECT

    def test_reduction_derives_barrier(self):
        src = (
            "DEFINE PHASE a GRANULES=8 WRITES [ X(I) ]\n"
            "DEFINE PHASE b GRANULES=8 READS [ X(*) ] WRITES [ s(0) ]\n"
            "DISPATCH a ENABLE [b/MAPPING=AUTO]\nDISPATCH b\n"
        )
        prog = self._compile(src)
        assert ("a", "b") not in prog.links  # null verdict -> no link

    def test_compiled_access_patterns_attached(self):
        src = (
            "MAP M FANIN=2\n"
            "DEFINE PHASE a GRANULES=8 READS [ X(M(J,I)) W(*) K(3) ] WRITES [ Y(I+1) ]\n"
            "DISPATCH a\n"
        )
        prog = self._compile(src)
        access = prog.phases["a"].access
        assert access is not None
        kinds = {type(r.index) for r in access.reads}
        assert kinds == {MappedIndex, AllIndex, ConstIndex}
        assert access.writes[0].index == AffineIndex(1, 1)

    def test_auto_program_runs_with_safety_verification(self):
        from repro.core.overlap import OverlapConfig
        from repro.executive import run_program

        src = (
            "DEFINE PHASE a GRANULES=40 READS [ X(I) ] WRITES [ Y(I) ]\n"
            "DEFINE PHASE b GRANULES=40 READS [ Y(I) ] WRITES [ Z(I) ]\n"
            "DISPATCH a ENABLE [b/MAPPING=AUTO]\nDISPATCH b\n"
        )
        prog = self._compile(src)
        r = run_program(prog, 4, config=OverlapConfig(verify_safety=True), seed=2)
        assert r.granules_executed == 80
        assert r.phase_stats[1].overlapped
