"""Tests for the overlap-safety analyzer (``repro.lint``)."""

from __future__ import annotations

import json
from io import StringIO
from pathlib import Path

import pytest

from repro.cli import main
from repro.core.classifier import (
    PairClassification,
    classification_of,
    enables_no_more_than,
)
from repro.core.mapping import (
    IdentityMapping,
    MappingKind,
    NullMapping,
    ReverseIndirectMapping,
    SeamMapping,
    UniversalMapping,
)
from repro.lang import VerificationError, compile_program, parse, verify
from repro.lint import (
    AdmissionGuard,
    CrossCheckError,
    RULES,
    Severity,
    lint_source,
    run_self_check,
)

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_cli(*argv: str) -> tuple[int, str]:
    out = StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


def _c(kind, offsets=(), map_name="", fan_in=1):
    return PairClassification("p", "s", kind, offsets=offsets, map_name=map_name, fan_in=fan_in)


class TestSubsumptionOrder:
    def test_null_below_everything(self):
        for kind in MappingKind:
            assert enables_no_more_than(_c(MappingKind.NULL), _c(kind))

    def test_universal_above_everything(self):
        for kind in MappingKind:
            assert enables_no_more_than(_c(kind), _c(MappingKind.UNIVERSAL))

    def test_universal_not_below_seam(self):
        assert not enables_no_more_than(
            _c(MappingKind.UNIVERSAL), _c(MappingKind.SEAM, offsets=(-1, 0, 1))
        )

    def test_identity_is_seam_zero(self):
        assert enables_no_more_than(
            _c(MappingKind.IDENTITY), _c(MappingKind.SEAM, offsets=(0,))
        )
        assert enables_no_more_than(
            _c(MappingKind.SEAM, offsets=(0,)), _c(MappingKind.IDENTITY)
        )

    def test_wider_seam_enables_less(self):
        wide = _c(MappingKind.SEAM, offsets=(-1, 0, 1))
        narrow = _c(MappingKind.SEAM, offsets=(0, 1))
        assert enables_no_more_than(wide, narrow)
        assert not enables_no_more_than(narrow, wide)

    def test_seam_below_identity_needs_zero_superset(self):
        assert enables_no_more_than(_c(MappingKind.SEAM, offsets=(-1, 0, 1)), _c(MappingKind.IDENTITY))
        assert not enables_no_more_than(_c(MappingKind.SEAM, offsets=(-1, 1)), _c(MappingKind.IDENTITY))

    def test_indirect_comparable_only_to_itself(self):
        a = _c(MappingKind.REVERSE_INDIRECT, map_name="IMAP", fan_in=4)
        assert enables_no_more_than(a, _c(MappingKind.REVERSE_INDIRECT, map_name="IMAP", fan_in=4))
        assert not enables_no_more_than(a, _c(MappingKind.REVERSE_INDIRECT, map_name="JMAP", fan_in=4))
        assert not enables_no_more_than(a, _c(MappingKind.REVERSE_INDIRECT, map_name="IMAP", fan_in=2))
        assert not enables_no_more_than(a, _c(MappingKind.FORWARD_INDIRECT, map_name="IMAP", fan_in=4))

    def test_classification_of_round_trips_params(self):
        c = classification_of(SeamMapping((-1, 0, 1)), "p", "s")
        assert c.kind is MappingKind.SEAM and c.offsets == (-1, 0, 1)
        c = classification_of(ReverseIndirectMapping("IMAP", fan_in=4), "p", "s")
        assert c.map_name == "IMAP" and c.fan_in == 4
        for m in (UniversalMapping(), IdentityMapping(), NullMapping()):
            assert classification_of(m, "p", "s").kind is m.kind


class TestAnalyzerRules:
    def test_race_detected(self):
        src = (
            "DEFINE PHASE a GRANULES=8 READS [ F(I) ] WRITES [ U(I) ]\n"
            "DEFINE PHASE b GRANULES=8 READS [ U(I-1) U(I) U(I+1) ] WRITES [ V(I) ]\n"
            "DISPATCH a ENABLE [ b/MAPPING=UNIVERSAL ]\n"
            "DISPATCH b\n"
        )
        diags = lint_source(src)
        assert [d.rule_id for d in diags] == ["RDN001"]
        assert diags[0].severity is Severity.ERROR
        assert diags[0].line == 3 and diags[0].col > 1

    def test_exact_declaration_is_clean(self):
        src = (
            "DEFINE PHASE a GRANULES=8 READS [ F(I) ] WRITES [ U(I) ]\n"
            "DEFINE PHASE b GRANULES=8 READS [ U(I-1) U(I) U(I+1) ] WRITES [ V(I) ]\n"
            "DISPATCH a ENABLE [ b/MAPPING=SEAM(-1,0,1) ]\n"
            "DISPATCH b\n"
        )
        assert lint_source(src) == []

    def test_overly_wide_seam_is_safe_not_lost(self):
        # declaring a wider seam than needed enables *less*: RDN002
        src = (
            "DEFINE PHASE a GRANULES=8 READS [ F(I) ] WRITES [ U(I) ]\n"
            "DEFINE PHASE b GRANULES=8 READS [ U(I) ] WRITES [ V(I) ]\n"
            "DISPATCH a ENABLE [ b/MAPPING=SEAM(-1,0,1) ]\n"
            "DISPATCH b\n"
        )
        diags = lint_source(src)
        assert [d.rule_id for d in diags] == ["RDN002"]

    def test_missing_enable_with_overlap_available_is_lost_utilization(self):
        src = (
            "DEFINE PHASE a GRANULES=8 READS [ P(I) ] WRITES [ Q(I) ]\n"
            "DEFINE PHASE b GRANULES=8 READS [ R(I) ] WRITES [ S(I) ]\n"
            "DISPATCH a\n"
            "DISPATCH b\n"
        )
        assert [d.rule_id for d in lint_source(src)] == ["RDN002"]

    def test_true_barrier_without_enable_is_clean(self):
        src = (
            "DEFINE PHASE a GRANULES=8 READS [ P(I) ] WRITES [ Q(I) ]\n"
            "DEFINE PHASE b GRANULES=8 READS [ Q(*) ] WRITES [ S(0) ]\n"
            "DISPATCH a\n"
            "DISPATCH b\n"
        )
        assert lint_source(src) == []

    def test_serial_separation_suppresses_lost_utilization(self):
        src = (
            "DEFINE PHASE a GRANULES=8 READS [ P(I) ] WRITES [ Q(I) ]\n"
            "DEFINE PHASE b GRANULES=8 READS [ R(I) ] WRITES [ S(I) ]\n"
            "DISPATCH a\n"
            "SERIAL decide DURATION=1.0\n"
            "DISPATCH b\n"
        )
        assert lint_source(src) == []

    def test_auto_mapping_is_clean(self):
        src = (
            "DEFINE PHASE a GRANULES=8 READS [ F(I) ] WRITES [ U(I) ]\n"
            "DEFINE PHASE b GRANULES=8 READS [ U(I-1) U(I) U(I+1) ] WRITES [ V(I) ]\n"
            "DISPATCH a ENABLE [ b/MAPPING=AUTO ]\n"
            "DISPATCH b\n"
        )
        assert lint_source(src) == []

    def test_branch_reachable_pairs_are_checked(self):
        # the race hides behind a conditional branch
        src = (
            "DEFINE PHASE a GRANULES=8 READS [ F(I) ] WRITES [ U(I) ]\n"
            "DEFINE PHASE b GRANULES=8 READS [ U(I-1) U(I+1) ] WRITES [ V(I) ]\n"
            "DEFINE PHASE c GRANULES=8 READS [ X(I) ] WRITES [ Y(I) ]\n"
            "DISPATCH a ENABLE/BRANCHINDEPENDENT [ b/MAPPING=UNIVERSAL c/MAPPING=UNIVERSAL ]\n"
            "IF (K .EQ. 0) THEN GO TO alt\n"
            "DISPATCH b\n"
            "GOTO done\n"
            "alt:\n"
            "DISPATCH c\n"
            "done:\n"
        )
        diags = lint_source(src)
        assert [d.rule_id for d in diags] == ["RDN001"]
        assert "a -> b" in diags[0].message

    def test_front_end_failure_is_rdn000(self):
        diags = lint_source("] DISPATCH", filename="bad.pax")
        assert [d.rule_id for d in diags] == ["RDN000"]
        assert diags[0].file == "bad.pax"
        assert diags[0].line >= 1 and diags[0].col >= 1

    def test_pragma_suppression(self):
        src = (
            "! lint: disable=RDN003\n"
            "DEFINE PHASE a GRANULES=8 READS [ P(I) ] WRITES [ Q(I) ]\n"
            "DEFINE PHASE b GRANULES=8 READS [ Q(I) ] WRITES [ R(I) ]\n"
            "DISPATCH a ENABLE/MAPPING=IDENTITY\n"
            "DISPATCH b\n"
        )
        assert lint_source(src) == []

    def test_pragma_cannot_suppress_rdn000(self):
        diags = lint_source("! lint: disable=RDN000\n] DISPATCH")
        assert [d.rule_id for d in diags] == ["RDN000"]

    def test_self_check_corpus_passes(self):
        ok, lines = run_self_check()
        assert ok, "\n".join(lines)


class TestLintCLI:
    def test_fixture_exit_codes_and_rule_ids(self):
        for path in sorted((EXAMPLES / "lint").glob("*.pax")):
            expected = path.stem.split("_")[0].upper()
            code, text = run_cli("lint", str(path))
            assert code == 1, f"{path.name} should fail lint"
            assert expected in text, f"{path.name} should report {expected}"
            assert f"{path}:" in text  # file:line:col span present

    def test_clean_examples_have_no_findings(self):
        files = sorted(str(p) for p in EXAMPLES.glob("*.pax"))
        assert files, "clean .pax examples must exist"
        code, text = run_cli("lint", *files)
        assert code == 0
        assert "0 finding(s)" in text

    def test_json_output_round_trips(self):
        path = EXAMPLES / "lint" / "rdn001_race.pax"
        code, text = run_cli("lint", "--json", str(path))
        assert code == 1
        findings = json.loads(text)
        assert findings and findings[0]["rule_id"] == "RDN001"
        for f in findings:
            assert f["rule_id"] in RULES
            assert f["severity"] in ("error", "warning", "info")
            assert f["line"] >= 1 and f["col"] >= 1
            assert f["file"].endswith(".pax")

    def test_fail_on_error_passes_warning_fixture(self):
        path = EXAMPLES / "lint" / "rdn002_lost_utilization.pax"
        code, _ = run_cli("lint", "--fail-on", "error", str(path))
        assert code == 0
        code, _ = run_cli("lint", "--fail-on", "warning", str(path))
        assert code == 1

    def test_fail_on_never(self):
        path = EXAMPLES / "lint" / "rdn001_race.pax"
        code, _ = run_cli("lint", "--fail-on", "never", str(path))
        assert code == 0

    def test_suppress_flag(self):
        path = EXAMPLES / "lint" / "rdn003_unverified_enable.pax"
        code, text = run_cli("lint", "--suppress", "RDN003", str(path))
        assert code == 0
        assert "0 finding(s)" in text

    def test_self_check_command(self):
        code, text = run_cli("lint", "--self-check")
        assert code == 0
        assert "self-check passed" in text

    def test_missing_file_is_usage_error(self):
        code, _ = run_cli("lint", "examples/lint/no_such_file.pax")
        assert code == 2

    def test_no_files_is_usage_error(self):
        code, _ = run_cli("lint")
        assert code == 2

    def test_select_narrows_reporting(self):
        path = EXAMPLES / "lint" / "rdn010_idle_cost.pax"  # fires RDN002+RDN010
        code, text = run_cli("lint", "--select", "RDN010", str(path))
        assert code == 1
        assert "RDN010" in text and "RDN002" not in text
        code, text = run_cli("lint", "--select", "RDN007", str(path))
        assert code == 0
        assert "0 finding(s)" in text

    def test_select_cannot_drop_rdn000(self, tmp_path):
        bad = tmp_path / "broken.pax"
        bad.write_text("] DISPATCH\n")
        code, text = run_cli("lint", "--select", "RDN009", str(bad))
        assert code == 1
        assert "RDN000" in text

    def test_disable_is_an_alias_for_suppress(self):
        path = EXAMPLES / "lint" / "rdn003_unverified_enable.pax"
        code, text = run_cli("lint", "--disable", "RDN003", str(path))
        assert code == 0
        assert "0 finding(s)" in text

    def test_unknown_rule_id_is_usage_error(self):
        path = EXAMPLES / "lint" / "rdn001_race.pax"
        code, _ = run_cli("lint", "--select", "RDN999", str(path))
        assert code == 2
        code, _ = run_cli("lint", "--disable", "BOGUS", str(path))
        assert code == 2

    def test_strict_fails_on_any_finding(self):
        path = EXAMPLES / "lint" / "rdn002_lost_utilization.pax"
        code, _ = run_cli("lint", "--strict", "--fail-on", "error", str(path))
        assert code == 1
        clean = EXAMPLES / "pipeline.pax"
        code, _ = run_cli("lint", "--strict", str(clean))
        assert code == 0

    def test_input_files_are_deduped(self):
        path = str(EXAMPLES / "lint" / "rdn001_race.pax")
        _, once = run_cli("lint", "--fail-on", "never", path)
        _, twice = run_cli("lint", "--fail-on", "never", path, path)
        assert once == twice

    def test_sarif_output_is_valid_and_stable(self):
        path = EXAMPLES / "lint" / "rdn001_race.pax"
        code, text = run_cli("lint", "--sarif", str(path))
        assert code == 1
        doc = json.loads(text)
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        assert {r["id"] for r in run["tool"]["driver"]["rules"]} == set(RULES)
        (result,) = run["results"]
        assert result["ruleId"] == "RDN001"
        assert result["level"] == "error"
        loc = result["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uri"].endswith("rdn001_race.pax")
        assert loc["region"]["startLine"] >= 1
        # deterministic: same input, same bytes
        _, again = run_cli("lint", "--sarif", str(path))
        assert text == again

    def test_sarif_and_json_are_mutually_exclusive(self):
        path = EXAMPLES / "lint" / "rdn001_race.pax"
        code, _ = run_cli("lint", "--sarif", "--json", str(path))
        assert code == 2


class TestRuntimeCrossCheck:
    CLEAN = (
        "DEFINE PHASE load GRANULES=8 COST=1 READS [ IN(I) ] WRITES [ X(I) ]\n"
        "DEFINE PHASE smooth GRANULES=8 COST=1 READS [ X(I-1) X(I) X(I+1) ] WRITES [ Y(I) ]\n"
        "DISPATCH load ENABLE [ smooth/MAPPING=SEAM(-1,0,1) ]\n"
        "DISPATCH smooth\n"
    )
    RACY = (
        "DEFINE PHASE relax GRANULES=8 COST=1 READS [ F(I) ] WRITES [ U(I) ]\n"
        "DEFINE PHASE copy GRANULES=8 COST=1 READS [ U(I-1) U(I) U(I+1) ] WRITES [ V(I) ]\n"
        "DISPATCH relax ENABLE [ copy/MAPPING=UNIVERSAL ]\n"
        "DISPATCH copy\n"
    )

    def test_clean_program_passes_guard(self):
        from repro.executive.scheduler import run_program

        program = compile_program(self.CLEAN)
        guard = AdmissionGuard(program)
        result = run_program(program, 4, admission_guard=guard)
        assert result.makespan > 0
        assert guard.checked >= 1

    def test_racy_admission_raises(self):
        from repro.executive.scheduler import run_program

        program = compile_program(self.RACY)
        with pytest.raises(CrossCheckError, match="rejects the declared mapping"):
            run_program(program, 4, admission_guard=AdmissionGuard(program))

    def test_guard_skips_undeclared_footprints(self):
        from repro.core.mapping import UniversalMapping
        from repro.core.phase import PhaseProgram, PhaseSpec
        from repro.executive.scheduler import run_program

        program = PhaseProgram.chain(
            [PhaseSpec("p", 8), PhaseSpec("q", 8)], [UniversalMapping()]
        )
        guard = AdmissionGuard(program)
        run_program(program, 4, admission_guard=guard)
        assert guard.checked >= 1  # inspected, but no verdict to exceed


class TestSpanThreading:
    def test_verification_error_carries_line_and_col(self):
        src = "DEFINE PHASE a GRANULES=1\nDISPATCH a ENABLE [ghost/MAPPING=IDENTITY]\n"
        with pytest.raises(VerificationError) as err:
            verify(parse(src))
        assert err.value.line == 2
        assert err.value.col is not None and err.value.col > 1
        assert f"line 2:{err.value.col}:" in str(err.value)

    def test_ast_nodes_carry_columns(self):
        prog = parse("DEFINE PHASE p GRANULES=1\n   DISPATCH p\n")
        dispatch = prog.statements[-1]
        assert dispatch.line == 2 and dispatch.col == 4
