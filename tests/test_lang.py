"""Tests for the PAX language: lexer, parser, verification, compilation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.mapping import (
    ForwardIndirectMapping,
    IdentityMapping,
    NullMapping,
    ReverseIndirectMapping,
    SeamMapping,
    UniversalMapping,
)
from repro.core.phase import SerialAction
from repro.lang import LexError, ParseError, VerificationError, compile_program, parse, tokenize, verify
from repro.lang.ast import Comparison, Dispatch, EnableClauseKind, Imod, Num, Var
from repro.lang.lexer import TokenKind


class TestLexer:
    def test_keywords_case_insensitive(self):
        toks = tokenize("dispatch Phase-A")
        assert toks[0].kind is TokenKind.KEYWORD and toks[0].upper == "DISPATCH"
        assert toks[1].kind is TokenKind.IDENT and toks[1].text == "Phase-A"

    def test_comments_stripped(self):
        toks = tokenize("DISPATCH x ! this is a comment [ ] /")
        assert [t.text for t in toks[:-1]] == ["DISPATCH", "x"]

    def test_numbers(self):
        toks = tokenize("GRANULES=12 COST=3.5")
        kinds = [t.kind for t in toks[:-1]]
        assert TokenKind.INT in kinds and TokenKind.FLOAT in kinds

    def test_malformed_number_rejected(self):
        with pytest.raises(LexError):
            tokenize("COST=1.2.3")

    def test_dot_operators(self):
        toks = tokenize("a .NE. b .LE. c")
        ops = [t.text for t in toks if t.kind is TokenKind.DOT_OP]
        assert ops == [".NE.", ".LE."]

    def test_hyphenated_identifiers(self):
        toks = tokenize("phase-name-1")
        assert toks[0].text == "phase-name-1"

    def test_unexpected_character(self):
        with pytest.raises(LexError):
            tokenize("DISPATCH $x")

    def test_line_numbers(self):
        toks = tokenize("a:\nb:\n")
        assert toks[0].line == 1
        assert toks[2].line == 2


class TestParser:
    def test_define_phase_full(self):
        prog = parse(
            "DEFINE PHASE p GRANULES=10 COST=2.5 LINES=7 ENABLE [ q/MAPPING=IDENTITY ]\n"
            "DEFINE PHASE q GRANULES=5"
        )
        d = prog.definitions()["p"]
        assert d.granules == 10 and d.cost == 2.5 and d.lines_of_code == 7
        assert d.enables[0].phase == "q"
        assert d.enables[0].mapping.kind == "IDENTITY"

    def test_dispatch_inline(self):
        prog = parse("DEFINE PHASE p GRANULES=1\nDISPATCH p ENABLE/MAPPING=UNIVERSAL")
        d = prog.statements[-1]
        assert isinstance(d, Dispatch)
        assert d.enable.kind is EnableClauseKind.INLINE
        assert d.enable.inline_mapping.kind == "UNIVERSAL"

    def test_dispatch_branch_dependent(self):
        prog = parse(
            "DEFINE PHASE p GRANULES=1 ENABLE [p/MAPPING=NULL]\nDISPATCH p ENABLE/BRANCHDEPENDENT"
        )
        assert prog.statements[-1].enable.kind is EnableClauseKind.BRANCH_DEPENDENT

    def test_mapping_options_with_args(self):
        prog = parse(
            "DEFINE PHASE p GRANULES=1 ENABLE [\n"
            "  a/MAPPING=REVERSE(IMAP,4)\n"
            "  b/MAPPING=FORWARD(FMAP)\n"
            "  c/MAPPING=SEAM(-1,0,1)\n"
            "]\n"
            "DEFINE PHASE a GRANULES=1\nDEFINE PHASE b GRANULES=1\nDEFINE PHASE c GRANULES=1"
        )
        items = prog.definitions()["p"].enables
        assert items[0].mapping.args == ("IMAP", 4)
        assert items[1].mapping.args == ("FMAP",)
        assert items[2].mapping.args == (-1, 0, 1)

    def test_if_goto_condition(self):
        prog = parse(
            "DEFINE PHASE p GRANULES=1\n"
            "IF (IMOD(LOOPCOUNTER,10).NE.0) THEN GO TO tgt\n"
            "DISPATCH p\n"
            "tgt:\n"
        )
        cond = prog.statements[1].condition
        assert isinstance(cond, Comparison)
        assert isinstance(cond.left, Imod)
        assert cond.evaluate({"LOOPCOUNTER": 20}) is False
        assert cond.evaluate({"LOOPCOUNTER": 21}) is True

    def test_expression_arithmetic(self):
        prog = parse("IF (2*K + 1 .GE. 7) THEN GOTO x\nx:")
        cond = prog.statements[0].condition
        assert cond.evaluate({"K": 3})
        assert not cond.evaluate({"K": 2})

    def test_serial_statement(self):
        prog = parse("SERIAL decide DURATION=2.5")
        s = prog.statements[0]
        assert s.name == "decide" and s.duration == 2.5

    def test_empty_enable_list_rejected(self):
        with pytest.raises(ParseError):
            parse("DEFINE PHASE p GRANULES=1 ENABLE [ ]")

    def test_reserved_word_as_name_rejected(self):
        with pytest.raises(ParseError):
            parse("DISPATCH ENABLE")

    def test_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse("] DISPATCH")


class TestVerification:
    def test_undefined_dispatch_rejected(self):
        with pytest.raises(VerificationError):
            verify(parse("DISPATCH ghost"))

    def test_enable_names_undefined_phase(self):
        src = "DEFINE PHASE a GRANULES=1\nDISPATCH a ENABLE [ghost/MAPPING=IDENTITY]\n"
        with pytest.raises(VerificationError, match="ghost"):
            verify(parse(src))

    def test_interlock_wrong_follower(self):
        src = (
            "DEFINE PHASE a GRANULES=1\nDEFINE PHASE b GRANULES=1\nDEFINE PHASE c GRANULES=1\n"
            "DISPATCH a ENABLE [b/MAPPING=IDENTITY]\nDISPATCH c\n"
        )
        with pytest.raises(VerificationError, match="'c'"):
            verify(parse(src))

    def test_interlock_correct_follower_passes(self):
        src = (
            "DEFINE PHASE a GRANULES=1\nDEFINE PHASE b GRANULES=1\n"
            "DISPATCH a ENABLE [b/MAPPING=IDENTITY]\nDISPATCH b\n"
        )
        v = verify(parse(src))
        assert not v.unverified_dispatches

    def test_inline_form_flagged_unverified(self):
        src = "DEFINE PHASE a GRANULES=1\nDISPATCH a ENABLE/MAPPING=UNIVERSAL\n"
        v = verify(parse(src))
        assert v.unverified_dispatches

    def test_branch_requires_branchindependent(self):
        src = (
            "DEFINE PHASE a GRANULES=1\nDEFINE PHASE b GRANULES=1\n"
            "DISPATCH a ENABLE [b/MAPPING=IDENTITY]\n"
            "IF (X .EQ. 0) THEN GOTO other\nDISPATCH b\nother:\nDISPATCH b\n"
        )
        with pytest.raises(VerificationError, match="BRANCHINDEPENDENT"):
            verify(parse(src))

    def test_branchindependent_covers_all_targets(self):
        src = (
            "DEFINE PHASE a GRANULES=1\nDEFINE PHASE b GRANULES=1\nDEFINE PHASE c GRANULES=1\n"
            "DISPATCH a ENABLE/BRANCHINDEPENDENT [b/MAPPING=IDENTITY c/MAPPING=UNIVERSAL]\n"
            "IF (X .EQ. 0) THEN GOTO other\nDISPATCH b\nGOTO end\nother:\nDISPATCH c\nend:\n"
        )
        verify(parse(src))  # must not raise

    def test_branchindependent_missing_target_rejected(self):
        src = (
            "DEFINE PHASE a GRANULES=1\nDEFINE PHASE b GRANULES=1\nDEFINE PHASE c GRANULES=1\n"
            "DISPATCH a ENABLE/BRANCHINDEPENDENT [b/MAPPING=IDENTITY]\n"
            "IF (X .EQ. 0) THEN GOTO other\nDISPATCH b\nGOTO end\nother:\nDISPATCH c\nend:\n"
        )
        with pytest.raises(VerificationError, match="'c'"):
            verify(parse(src))

    def test_branchdependent_needs_define_time_list(self):
        src = "DEFINE PHASE a GRANULES=1\nDISPATCH a ENABLE/BRANCHDEPENDENT\n"
        with pytest.raises(VerificationError, match="DEFINE-time"):
            verify(parse(src))

    def test_undefined_label_rejected(self):
        src = "DEFINE PHASE a GRANULES=1\nDISPATCH a\nGOTO nowhere\n"
        with pytest.raises(VerificationError, match="nowhere"):
            verify(parse(src))

    def test_duplicate_label_rejected(self):
        with pytest.raises(VerificationError, match="duplicate label"):
            verify(parse("x:\nx:\n"))

    def test_duplicate_phase_rejected(self):
        with pytest.raises(VerificationError, match="duplicate phase"):
            verify(parse("DEFINE PHASE a GRANULES=1\nDEFINE PHASE a GRANULES=2\n"))


class TestCompiler:
    def test_mapping_kinds_materialize(self):
        src = (
            "DEFINE PHASE a GRANULES=8\nDEFINE PHASE b GRANULES=8\nDEFINE PHASE c GRANULES=8\n"
            "DEFINE PHASE d GRANULES=8\nDEFINE PHASE e GRANULES=8\nDEFINE PHASE f GRANULES=8\n"
            "DISPATCH a ENABLE [b/MAPPING=UNIVERSAL]\n"
            "DISPATCH b ENABLE [c/MAPPING=IDENTITY]\n"
            "DISPATCH c ENABLE [d/MAPPING=SEAM(-1,0,1)]\n"
            "DISPATCH d ENABLE [e/MAPPING=REVERSE(IMAP,2)]\n"
            "DISPATCH e ENABLE [f/MAPPING=FORWARD(FMAP)]\n"
            "DISPATCH f\n"
        )
        gens = {
            "IMAP": lambda rng: rng.integers(0, 8, size=(2, 8)),
            "FMAP": lambda rng: rng.integers(0, 8, size=8),
        }
        prog = compile_program(src, map_generators=gens)
        types = [type(prog.mapping_between(a, b)) for a, b, _ in prog.adjacent_pairs()]
        assert types == [
            UniversalMapping,
            IdentityMapping,
            SeamMapping,
            ReverseIndirectMapping,
            ForwardIndirectMapping,
        ]

    def test_branch_resolution(self):
        src = (
            "DEFINE PHASE main GRANULES=4\nDEFINE PHASE odd GRANULES=4\nDEFINE PHASE even GRANULES=4\n"
            "DISPATCH main ENABLE/BRANCHINDEPENDENT [odd/MAPPING=IDENTITY even/MAPPING=UNIVERSAL]\n"
            "IF (IMOD(K,2).EQ.0) THEN GOTO even-path\n"
            "DISPATCH odd\nGOTO done\neven-path:\nDISPATCH even\ndone:\n"
        )
        p_even = compile_program(src, env={"K": 4})
        assert p_even.phase_sequence() == ["main", "even"]
        p_odd = compile_program(src, env={"K": 5})
        assert p_odd.phase_sequence() == ["main", "odd"]
        assert isinstance(p_odd.mapping_between("main", "odd"), IdentityMapping)

    def test_serial_statement_compiles_to_serial_action(self):
        src = (
            "DEFINE PHASE a GRANULES=4\nDEFINE PHASE b GRANULES=4\n"
            "DISPATCH a\nSERIAL decide DURATION=3.0\nDISPATCH b\n"
        )
        prog = compile_program(src)
        serials = [s for s in prog.schedule if isinstance(s, SerialAction)]
        assert len(serials) == 1 and serials[0].duration == 3.0
        assert isinstance(prog.mapping_between("a", "b"), NullMapping)

    def test_repeated_dispatch_gets_unique_occurrence(self):
        src = "DEFINE PHASE a GRANULES=4\nDISPATCH a\nDISPATCH a\n"
        prog = compile_program(src)
        assert prog.phase_sequence() == ["a", "a@1"]

    def test_loop_with_counter_terminates_or_errors(self):
        src = (
            "DEFINE PHASE a GRANULES=2\n"
            "top:\nDISPATCH a\nGOTO top\n"
        )
        with pytest.raises(VerificationError, match="steps"):
            compile_program(src, max_steps=50)

    def test_unbound_variable_reported(self):
        src = (
            "DEFINE PHASE a GRANULES=2\nDEFINE PHASE b GRANULES=2\n"
            "DISPATCH a\nIF (NOPE .EQ. 0) THEN GOTO x\nDISPATCH b\nx:\nDISPATCH b\n"
        )
        with pytest.raises(VerificationError):
            compile_program(src)

    def test_no_dispatch_rejected(self):
        with pytest.raises(VerificationError, match="no phases|dispatches"):
            compile_program("DEFINE PHASE a GRANULES=1\n")

    def test_define_time_enable_used_by_bare_dispatch(self):
        src = (
            "DEFINE PHASE a GRANULES=4 ENABLE [b/MAPPING=IDENTITY]\n"
            "DEFINE PHASE b GRANULES=4\n"
            "DISPATCH a\nDISPATCH b\n"
        )
        prog = compile_program(src)
        assert isinstance(prog.mapping_between("a", "b"), IdentityMapping)

    def test_compiled_program_runs_on_executive(self):
        from repro.core.overlap import OverlapConfig
        from repro.executive import run_program

        src = (
            "DEFINE PHASE load GRANULES=24\nDEFINE PHASE solve GRANULES=24\n"
            "DEFINE PHASE output GRANULES=12\n"
            "DISPATCH load ENABLE [solve/MAPPING=IDENTITY]\n"
            "DISPATCH solve ENABLE [output/MAPPING=UNIVERSAL]\n"
            "DISPATCH output\n"
        )
        prog = compile_program(src)
        r = run_program(prog, 4, config=OverlapConfig())
        assert r.granules_executed == 60


class TestSetStatement:
    def test_set_binds_variable(self):
        src = (
            "DEFINE PHASE a GRANULES=4\nDEFINE PHASE b GRANULES=4\n"
            "SET K = 2\n"
            "DISPATCH a\n"
            "IF (K .EQ. 2) THEN GOTO two\nDISPATCH a\nGOTO done\n"
            "two:\nDISPATCH b\ndone:\n"
        )
        prog = compile_program(src)
        assert prog.phase_sequence() == ["a", "b"]

    def test_set_forms_terminating_loop(self):
        src = (
            "DEFINE PHASE body GRANULES=4 ENABLE [body/MAPPING=UNIVERSAL]\n"
            "SET K = 0\n"
            "top:\nDISPATCH body ENABLE/BRANCHDEPENDENT\n"
            "SET K = K + 1\n"
            "IF (K .LT. 5) THEN GOTO top\n"
        )
        prog = compile_program(src)
        assert len(prog.phase_sequence()) == 5
        # self-link applies at every unrolled boundary
        assert ("body", "body@1") in prog.links

    def test_set_with_expression(self):
        src = (
            "DEFINE PHASE a GRANULES=4\n"
            "SET K = 3\nSET K = K * 2 + 1\n"
            "IF (K .EQ. 7) THEN GOTO ok\nDISPATCH a\nDISPATCH a\nok:\nDISPATCH a\n"
        )
        prog = compile_program(src)
        assert prog.phase_sequence() == ["a"]

    def test_set_unbound_rhs_reported(self):
        src = "DEFINE PHASE a GRANULES=4\nSET K = MISSING + 1\nDISPATCH a\n"
        with pytest.raises(VerificationError, match="MISSING"):
            compile_program(src)

    def test_infinite_set_loop_caught(self):
        src = (
            "DEFINE PHASE a GRANULES=4\n"
            "SET K = 0\ntop:\nDISPATCH a\nSET K = K\nGOTO top\n"
        )
        with pytest.raises(VerificationError, match="steps"):
            compile_program(src, max_steps=200)
