"""Supervised pool execution: deadlines, heartbeats, ladder, chaos, janitor.

The acceptance bar from the supervision PR:

* **Detection** — a deterministically injected hang is caught within its
  deadline (or its heartbeat window), the worker is preempted, and the
  report stays *byte-identical* to the fault-free serial run;
* **Bounded wall-clock** — a hang never blocks the sweep forever, even
  when it recurs on every attempt (the degradation ladder terminates at
  in-process serial, which cannot lose a worker);
* **Chaos** — a randomized but seeded mix of kills, hangs and slowdowns
  (:func:`repro.faults.chaos_plan`) still reproduces the reference bytes;
* **Hygiene** — the shm janitor reaps orphaned ``repro-map-*`` segments
  but never live or freshly created ones.
"""

from __future__ import annotations

import io
import os
import time

import pytest

from repro.faults import (
    FaultPlan,
    SweepWorkerHang,
    SweepWorkerSlow,
    chaos_plan,
)
from repro.obs import (
    EventBus,
    PoolDegraded,
    PoolTaskCompleted,
    PoolTaskHung,
    ProgressReporter,
    format_degraded,
    format_stall,
)
from repro.sweep import (
    GridSpec,
    SupervisionPolicy,
    Supervisor,
    SweepSpec,
    audit_shm_segments,
    parse_axis,
    reap_leaked_segments,
    run_grid,
    run_sweep,
)
from repro.sweep.supervise import (
    DEGRADATION_LADDER,
    degradation_ladder,
    heartbeat_path,
    stale_heartbeats,
)

SPEC = SweepSpec("identity", replications=4, seed=11, sim_workers=4)

#: Tight-but-honest knobs for the hang tests: detect within ~a second,
#: probe heartbeats an order of magnitude faster than their staleness bar.
FAST = dict(heartbeat_interval=0.1, poll_interval=0.02)


def reference_json() -> str:
    return run_sweep(SPEC, workers=1).report.to_json()


# ------------------------------------------------------------------ deadlines
class TestDeadlineHangs:
    def test_hang_detected_preempted_and_byte_identical(self):
        plan = FaultPlan(faults=(SweepWorkerHang(1),))
        policy = SupervisionPolicy(task_timeout=1.0, heartbeat_timeout=None, **FAST)
        t0 = time.perf_counter()
        outcome = run_sweep(
            SPEC, workers=2, fault_plan=plan, supervision=policy, pool="cold"
        )
        elapsed = time.perf_counter() - t0
        assert outcome.report.to_json() == reference_json()
        assert outcome.supervision is not None
        assert outcome.supervision["hangs_detected"] >= 1
        assert outcome.supervision["workers_preempted"] >= 1
        assert outcome.worker_restarts >= 1
        assert elapsed < 60, f"hang recovery took {elapsed:.1f}s — not bounded"

    def test_hung_event_published_with_deadline_reason(self):
        bus = EventBus()
        hung: list[PoolTaskHung] = []
        bus.subscribe(PoolTaskHung, hung.append)
        plan = FaultPlan(faults=(SweepWorkerHang(2),))
        policy = SupervisionPolicy(task_timeout=1.0, heartbeat_timeout=None, **FAST)
        outcome = run_sweep(
            SPEC, workers=2, fault_plan=plan, supervision=policy, bus=bus, pool="cold"
        )
        assert outcome.report.to_json() == reference_json()
        assert hung, "preemption must publish PoolTaskHung"
        assert all(e.reason == "deadline" for e in hung)
        assert all(e.elapsed >= e.deadline for e in hung)
        assert all(e.preempted_workers >= 1 for e in hung)

    def test_slowdown_within_deadline_is_not_a_hang(self):
        plan = FaultPlan(faults=(SweepWorkerSlow(1, delay_seconds=0.2),))
        policy = SupervisionPolicy(task_timeout=30.0, heartbeat_timeout=None, **FAST)
        outcome = run_sweep(
            SPEC, workers=2, fault_plan=plan, supervision=policy, pool="cold"
        )
        assert outcome.report.to_json() == reference_json()
        assert outcome.supervision["hangs_detected"] == 0
        assert outcome.worker_restarts == 0

    def test_supervised_no_fault_run_byte_identical(self):
        outcome = run_sweep(SPEC, workers=2, supervision=True, pool="cold")
        assert outcome.report.to_json() == reference_json()
        assert outcome.supervision == {
            "hangs_detected": 0,
            "workers_preempted": 0,
            "segments_reaped": 0,
            "degradations": [],
            "final_rung": "cold",
        }


# ------------------------------------------------------------------ heartbeats
class TestHeartbeats:
    def test_frozen_worker_detected_by_heartbeat_before_deadline(self):
        # freeze_heartbeat simulates a process too wedged to run even its
        # watchdog thread; the 60s task deadline would eventually catch it,
        # but the stale stamp must trip first (within ~a second).
        bus = EventBus()
        hung: list[PoolTaskHung] = []
        bus.subscribe(PoolTaskHung, hung.append)
        # staleness bar 2.5s: well past the warm pool's 1.0s stamp period
        # (no false trips on healthy workers), far under the 60s deadline
        plan = FaultPlan(faults=(SweepWorkerHang(1, freeze_heartbeat=True),))
        policy = SupervisionPolicy(task_timeout=60.0, heartbeat_timeout=2.5, **FAST)
        t0 = time.perf_counter()
        outcome = run_sweep(SPEC, workers=2, fault_plan=plan, supervision=policy, bus=bus)
        elapsed = time.perf_counter() - t0
        assert outcome.report.to_json() == reference_json()
        assert elapsed < 30, f"heartbeat detection took {elapsed:.1f}s"
        assert any(e.reason == "heartbeat" for e in hung)

    def test_stale_heartbeats_probe(self, tmp_path):
        directory = str(tmp_path)
        fresh, stale_pid, absent = 101, 102, 103
        now = time.time()
        for pid, age in ((fresh, 0.0), (stale_pid, 50.0)):
            path = heartbeat_path(directory, pid)
            with open(path, "w", encoding="utf-8") as fh:
                fh.write("x")
            os.utime(path, (now - age, now - age))
        got = stale_heartbeats(directory, [fresh, stale_pid, absent], timeout=10.0, now=now)
        # a missing stamp is NOT stale — lazily spawned workers have none yet
        assert got == [stale_pid]


# ------------------------------------------------------------------ the ladder
class TestDegradationLadder:
    def test_ladder_shape(self):
        assert DEGRADATION_LADDER == ("warm", "cold", "narrow", "serial")
        assert degradation_ladder("warm", 4) == [
            ("warm", 4), ("cold", 4), ("narrow", 2), ("serial", 1),
        ]
        assert degradation_ladder("cold", 2) == [
            ("cold", 2), ("narrow", 1), ("serial", 1),
        ]

    def test_persistent_hang_degrades_to_serial_and_stays_identical(self):
        # a hang that recurs on every attempt exhausts every pooled rung;
        # the serial rung runs inline and must still complete the report
        bus = EventBus()
        degraded: list[PoolDegraded] = []
        bus.subscribe(PoolDegraded, degraded.append)
        plan = FaultPlan(faults=(SweepWorkerHang(1, attempts=10),))
        policy = SupervisionPolicy(
            task_timeout=0.8, heartbeat_timeout=None, rung_budget=0, **FAST
        )
        t0 = time.perf_counter()
        outcome = run_sweep(
            SPEC, workers=2, fault_plan=plan, supervision=policy, bus=bus, pool="cold"
        )
        elapsed = time.perf_counter() - t0
        assert outcome.report.to_json() == reference_json()
        assert outcome.supervision["final_rung"] == "serial"
        assert outcome.supervision["degradations"] == [
            ["cold", "narrow"], ["narrow", "serial"],
        ]
        assert [(e.from_rung, e.to_rung) for e in degraded] == [
            ("cold", "narrow"), ("narrow", "serial"),
        ]
        assert elapsed < 60, f"ladder rundown took {elapsed:.1f}s — not bounded"

    def test_degrade_disabled_raises_like_unsupervised(self):
        plan = FaultPlan(faults=(SweepWorkerHang(1, attempts=10),))
        policy = SupervisionPolicy(
            task_timeout=0.8, heartbeat_timeout=None, rung_budget=0,
            degrade=False, **FAST,
        )
        with pytest.raises(RuntimeError, match="max_restarts"):
            run_sweep(SPEC, workers=2, fault_plan=plan, supervision=policy, pool="cold")


# ------------------------------------------------------------------ chaos
class TestChaosHarness:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_chaos_matrix_reproduces_reference_bytes(self, seed):
        plan = chaos_plan(seed, SPEC.replications)
        policy = SupervisionPolicy(task_timeout=1.5, heartbeat_timeout=2.5, **FAST)
        t0 = time.perf_counter()
        outcome = run_sweep(SPEC, workers=2, fault_plan=plan, supervision=policy)
        elapsed = time.perf_counter() - t0
        assert outcome.report.to_json() == reference_json(), f"chaos seed {seed}"
        assert elapsed < 120, f"chaos seed {seed} ran {elapsed:.1f}s — not bounded"

    def test_chaos_plan_is_deterministic(self):
        a, b = chaos_plan(7, 32), chaos_plan(7, 32)
        assert a.to_dict() == b.to_dict()
        assert a.faults, "seed 7 over 32 units must draw at least one fault"
        assert chaos_plan(8, 32).to_dict() != a.to_dict()


# ------------------------------------------------------------------ grids
class TestGridSupervision:
    GRID = GridSpec(
        base=SweepSpec("identity", replications=2, seed=5, sim_workers=4),
        axes=(parse_axis("sim_workers=4,8"),),
    )

    def test_hung_and_slow_cells_recover_byte_identical(self):
        ref = run_grid(self.GRID, workers=1).report.to_json()
        policy = SupervisionPolicy(task_timeout=1.2, heartbeat_timeout=None, **FAST)
        outcome = run_grid(
            self.GRID, workers=2, hang_cells=[1], slow_cells={0: 0.2},
            supervision=policy, pool="cold",
        )
        assert outcome.report.to_json() == ref
        assert outcome.supervision["hangs_detected"] >= 1
        assert outcome.worker_restarts >= 1


# ------------------------------------------------------------------ janitor
class TestShmJanitor:
    def test_audit_and_reap_orphans_honoring_grace(self, tmp_path):
        shm_dir = str(tmp_path)
        old, young = tmp_path / "repro-map-dead00", tmp_path / "repro-map-young0"
        other = tmp_path / "psm_other"  # foreign segment: never touched
        for p in (old, young, other):
            p.write_bytes(b"x")
        stamp = time.time() - 600
        os.utime(old, (stamp, stamp))

        audit = {r["segment"]: r for r in audit_shm_segments(shm_dir=shm_dir)}
        assert set(audit) == {"repro-map-dead00", "repro-map-young0"}
        assert audit["repro-map-dead00"]["age_seconds"] > 300
        assert not audit["repro-map-dead00"]["live"]

        reaped = reap_leaked_segments(grace_seconds=300.0, shm_dir=shm_dir)
        assert reaped == ["repro-map-dead00"]
        assert not old.exists() and young.exists() and other.exists()

    def test_live_owner_segments_are_never_reaped(self):
        np = pytest.importorskip("numpy")
        from repro.sweep.shm import SharedMapStore

        store = SharedMapStore.create({"m": np.arange(16, dtype=np.int64)})
        try:
            names = {d["segment"] for d in store.descriptors().values()}
            assert names
            reaped = reap_leaked_segments(grace_seconds=0.0)
            assert not (set(reaped) & names), "janitor reaped a live owner's segment"
            for name in names:
                assert os.path.exists(os.path.join("/dev/shm", name))
        finally:
            store.unlink()

    def test_negative_grace_rejected(self):
        with pytest.raises(ValueError):
            reap_leaked_segments(grace_seconds=-1.0)


# ------------------------------------------------------------------ policy/unit
class TestSupervisionPolicy:
    def test_defaults_are_valid(self):
        p = SupervisionPolicy()
        assert p.deadline_floor <= p.deadline_ceiling
        assert p.degrade and p.task_timeout is None

    @pytest.mark.parametrize("kwargs", [
        {"task_timeout": 0.0},
        {"task_timeout": float("inf")},
        {"deadline_factor": 0.0},
        {"deadline_floor": 5.0, "deadline_ceiling": 1.0},
        {"heartbeat_timeout": -1.0},
        {"heartbeat_interval": 0.0},
        {"poll_interval": 0.0},
        {"rung_budget": -1},
        {"shm_reap_grace": -0.1},
    ])
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SupervisionPolicy(**kwargs)


class TestSupervisorDeadlines:
    def test_task_timeout_overrides_estimate(self):
        sup = Supervisor(SupervisionPolicy(task_timeout=7.0), estimate=lambda: 100.0)
        assert sup.deadline_for("k") == 7.0

    def test_no_estimate_falls_back_to_ceiling(self):
        sup = Supervisor(SupervisionPolicy(deadline_ceiling=42.0), estimate=lambda: None)
        assert sup.deadline_for("k") == 42.0

    def test_derived_deadline_scales_with_batch_and_clamps(self):
        policy = SupervisionPolicy(
            deadline_factor=10.0, deadline_floor=2.0, deadline_ceiling=50.0
        )
        sup = Supervisor(policy, estimate=lambda: 0.5)
        sup.items_of = lambda key: {"small": 1, "big": 100}[key]
        assert sup.deadline_for("small") == 5.0  # 10 × 0.5 × 1
        assert sup.deadline_for("big") == 50.0  # clamped to ceiling

    def test_microsecond_estimates_clamp_to_floor(self):
        sup = Supervisor(SupervisionPolicy(deadline_floor=2.0), estimate=lambda: 1e-6)
        assert sup.deadline_for("k") == 2.0


# ------------------------------------------------------------------ progress
class TestProgressUnderSupervision:
    def test_stall_and_ladder_lines(self):
        sink = io.StringIO()
        bus = EventBus()
        reporter = ProgressReporter(sink, min_interval=0.0)
        reporter.subscribe(bus)
        bus.publish(PoolTaskCompleted(1.0, "replication", 1, 4, 0.0, 1.0))
        bus.publish(PoolTaskHung(2.0, "replication", "batch 1", 12.1, 10.0, "deadline", 2))
        bus.publish(PoolDegraded(3.0, "replication", "warm", "cold", 3))
        bus.publish(PoolTaskCompleted(4.0, "replication", 4, 4, 3.0, 4.0))
        reporter.close()
        lines = sink.getvalue().splitlines()
        assert "stall: replication batch 1 hung after 12.1s" in lines[1]
        assert "deadline 10.0s" in lines[1] and "preempting 2 workers" in lines[1]
        assert lines[2] == "[sweep] degraded: warm → cold after 3 restarts (retry_budget)"
        assert lines[3].endswith("| rung cold | 1 preempted")
        assert reporter.stalls_seen == 1 and reporter.rung == "cold"

    def test_heartbeat_stall_wording(self):
        event = PoolTaskHung(1.0, "cell", "worker:42", 30.0, 30.0, "heartbeat", 1)
        assert format_stall(event) == (
            "[sweep] stall: cell worker:42 hung after 30.0s "
            "(worker heartbeat stale) — preempting 1 worker"
        )

    def test_degraded_line_singular_restart(self):
        event = PoolDegraded(1.0, "replication", "narrow", "serial", 1)
        assert format_degraded(event) == (
            "[sweep] degraded: narrow → serial after 1 restart (retry_budget)"
        )
