"""Tests for deterministic named RNG substreams."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.rng import RngStreams


class TestRngStreams:
    def test_same_seed_same_stream(self):
        a = RngStreams(42).get("x").random(8)
        b = RngStreams(42).get("x").random(8)
        assert np.array_equal(a, b)

    def test_different_names_independent(self):
        s = RngStreams(42)
        a = s.get("x").random(8)
        b = s.get("y").random(8)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = RngStreams(1).get("x").random(8)
        b = RngStreams(2).get("x").random(8)
        assert not np.array_equal(a, b)

    def test_get_is_cached(self):
        s = RngStreams(0)
        g1 = s.get("x")
        g2 = s.get("x")
        assert g1 is g2
        # draws continue, not restart
        a = g1.random()
        b = g2.random()
        assert a != b

    def test_fresh_rewinds(self):
        s = RngStreams(0)
        first = s.fresh("x").random()
        s.get("x").random()  # advance the cached one
        again = s.fresh("x").random()
        assert first == again

    def test_child_namespace_differs(self):
        s = RngStreams(7)
        a = s.get("x").random(4)
        b = s.child("sub").get("x").random(4)
        assert not np.array_equal(a, b)

    def test_child_deterministic(self):
        a = RngStreams(7).child("sub").get("x").random(4)
        b = RngStreams(7).child("sub").get("x").random(4)
        assert np.array_equal(a, b)

    def test_seed_property(self):
        assert RngStreams(9).seed == 9

    def test_non_int_seed_rejected(self):
        with pytest.raises(TypeError):
            RngStreams("seed")  # type: ignore[arg-type]

    def test_adding_consumer_does_not_perturb(self):
        s1 = RngStreams(3)
        a_before = s1.get("a").random(4)
        s2 = RngStreams(3)
        s2.get("zzz").random(10)  # a new consumer drawing first
        a_after = s2.get("a").random(4)
        assert np.array_equal(a_before, a_after)
