"""Edge-case and stress tests for the executive scheduler."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.granule import GranuleSet
from repro.core.mapping import (
    IdentityMapping,
    NullMapping,
    ReverseIndirectMapping,
    SeamMapping,
    UniversalMapping,
)
from repro.core.overlap import OverlapConfig, OverlapPolicy
from repro.core.phase import ConstantCost, PhaseProgram, PhaseSpec, SerialAction
from repro.executive import ExecutiveCosts, Extensions, TaskSizer, run_program
from repro.sim.machine import ExecutivePlacement
from repro.workloads.generators import ConditionalCost, LognormalCost, UniformCost


class TestTinyPhases:
    def test_single_granule_phases(self, small_costs):
        prog = PhaseProgram.chain(
            [PhaseSpec("a", 1), PhaseSpec("b", 1), PhaseSpec("c", 1)],
            [IdentityMapping(), UniversalMapping()],
        )
        r = run_program(prog, 4, config=OverlapConfig(), costs=small_costs)
        assert r.granules_executed == 3

    def test_one_worker_one_granule(self, small_costs):
        prog = PhaseProgram([PhaseSpec("only", 1)])
        r = run_program(prog, 1, costs=small_costs)
        assert r.granules_executed == 1
        assert r.phase_stats[0].tasks == 1

    def test_more_phases_than_granules(self, small_costs):
        prog = PhaseProgram.chain(
            [PhaseSpec(f"p{i}", 2) for i in range(10)],
            [IdentityMapping()] * 9,
        )
        r = run_program(prog, 8, config=OverlapConfig(), costs=small_costs)
        assert r.granules_executed == 20


class TestStochasticCosts:
    @pytest.mark.parametrize(
        "cost",
        [UniformCost(0.5, 1.5), LognormalCost(1.0, 0.6), ConditionalCost(1.0, 0.3, 0.01)],
    )
    def test_stochastic_cost_models_complete(self, cost, small_costs):
        prog = PhaseProgram.chain(
            [PhaseSpec("a", 60, cost), PhaseSpec("b", 60, cost)], [IdentityMapping()]
        )
        r = run_program(prog, 6, config=OverlapConfig(), costs=small_costs, seed=7)
        assert r.granules_executed == 120
        assert r.compute_time > 0

    def test_seed_changes_stochastic_makespan(self, small_costs):
        prog = PhaseProgram.chain(
            [PhaseSpec("a", 60, LognormalCost(1.0, 0.8)), PhaseSpec("b", 60)],
            [IdentityMapping()],
        )
        r1 = run_program(prog, 6, costs=small_costs, seed=1)
        r2 = run_program(prog, 6, costs=small_costs, seed=2)
        assert r1.makespan != r2.makespan

    def test_same_seed_reproduces_stochastic_run(self, small_costs):
        prog = PhaseProgram.chain(
            [PhaseSpec("a", 60, UniformCost()), PhaseSpec("b", 60, UniformCost())],
            [SeamMapping((-1, 0, 1))],
        )
        r1 = run_program(prog, 6, config=OverlapConfig(), costs=small_costs, seed=42)
        r2 = run_program(prog, 6, config=OverlapConfig(), costs=small_costs, seed=42)
        assert r1.makespan == r2.makespan
        assert r1.compute_time == r2.compute_time


class TestRepeatedPhasesInSchedule:
    def test_same_phase_multiple_occurrences(self, small_costs):
        phases = [PhaseSpec("sweep", 24), PhaseSpec("reduce", 12)]
        prog = PhaseProgram(phases, ["sweep", "reduce", "sweep", "reduce"])
        r = run_program(prog, 4, costs=small_costs)
        assert r.granules_executed == 72
        assert len(r.phase_stats) == 4
        names = [s.name for s in r.phase_stats]
        assert names == ["sweep", "reduce", "sweep", "reduce"]

    def test_links_apply_to_every_occurrence(self, small_costs):
        from repro.core.phase import PhaseLink

        phases = [PhaseSpec("a", 24), PhaseSpec("b", 24)]
        prog = PhaseProgram(
            phases,
            ["a", "b", "a", "b"],
            [PhaseLink("a", "b", IdentityMapping()), PhaseLink("b", "a", UniversalMapping())],
        )
        r = run_program(prog, 4, config=OverlapConfig(), costs=small_costs)
        # every non-initial run was overlap-initiated
        assert all(s.overlapped for s in r.phase_stats[1:])

    def test_trailing_serial_action_never_runs(self, small_costs):
        phases = [PhaseSpec("a", 8)]
        prog = PhaseProgram(phases, ["a", SerialAction("tail", 99.0)])
        r = run_program(prog, 2, costs=small_costs)
        assert r.serial_time == 0.0


class TestSharedPlacementEdges:
    def test_single_worker_shared_executive(self, small_costs):
        # worker 0 alternates between all management and all computation
        prog = PhaseProgram.chain(
            [PhaseSpec("a", 12), PhaseSpec("b", 12)], [IdentityMapping()]
        )
        r = run_program(prog, 1, config=OverlapConfig(), costs=small_costs,
                        placement=ExecutivePlacement.SHARED)
        assert r.granules_executed == 24
        # everything ran on P0: compute + mgmt account for the makespan
        busy = r.trace.busy_time("P0")
        assert busy == pytest.approx(r.makespan, rel=0.05)

    def test_shared_with_max_middle_managers(self, small_costs):
        prog = PhaseProgram.chain(
            [PhaseSpec("a", 40), PhaseSpec("b", 40)], [IdentityMapping()]
        )
        r = run_program(prog, 4, config=OverlapConfig(), costs=small_costs,
                        placement=ExecutivePlacement.SHARED,
                        extensions=Extensions(middle_managers=4))
        assert r.granules_executed == 80


class TestZeroCostEverything:
    def test_all_zero_durations_terminate(self):
        prog = PhaseProgram.chain(
            [PhaseSpec("a", 16, ConstantCost(0.0)), PhaseSpec("b", 16, ConstantCost(0.0))],
            [IdentityMapping()],
        )
        r = run_program(prog, 4, config=OverlapConfig(), costs=ExecutiveCosts.free())
        assert r.makespan == 0.0
        assert r.granules_executed == 32


class TestGranuleAccounting:
    def test_assigned_equals_completed_equals_universe(self, small_costs):
        from repro.executive import ExecutiveSimulation

        prog = PhaseProgram.chain(
            [PhaseSpec("a", 50), PhaseSpec("b", 50)], [IdentityMapping()]
        )
        sim = ExecutiveSimulation(prog, 6, config=OverlapConfig(), costs=small_costs)
        sim.run()
        for run in sim.runs:
            assert run.assigned == GranuleSet.universe(run.n)
            assert run.completed == GranuleSet.universe(run.n)
            assert not run.queued

    def test_reverse_indirect_duplicate_map_entries(self, small_costs):
        # every successor granule requires the same single predecessor
        prog = PhaseProgram.chain(
            [PhaseSpec("a", 30), PhaseSpec("b", 30)],
            [ReverseIndirectMapping("M", fan_in=1)],
            map_generators={"M": lambda rng: np.zeros(30, dtype=int)},
        )
        r = run_program(prog, 4, config=OverlapConfig(), costs=small_costs)
        assert r.granules_executed == 60

    def test_null_then_universal_sequence(self, small_costs):
        prog = PhaseProgram.chain(
            [PhaseSpec("a", 20), PhaseSpec("b", 20), PhaseSpec("c", 20)],
            [NullMapping(serial_cost=2.0), UniversalMapping()],
        )
        r = run_program(prog, 4, config=OverlapConfig(), costs=small_costs)
        assert r.granules_executed == 60
        assert r.serial_time == pytest.approx(2.0)
        assert not r.phase_stats[1].overlapped
        assert r.phase_stats[2].overlapped


class TestBarrierPolicyIgnoresLinks:
    def test_barrier_never_overlaps_even_with_links(self, small_costs):
        prog = PhaseProgram.chain(
            [PhaseSpec("a", 40), PhaseSpec("b", 40)], [UniversalMapping()]
        )
        r = run_program(prog, 4, config=OverlapConfig(policy=OverlapPolicy.NONE),
                        costs=small_costs)
        assert not any(s.overlapped for s in r.phase_stats)
