"""Unit and property tests for granule interval-set algebra."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.granule import GranuleRange, GranuleSet


# ---------------------------------------------------------------- GranuleRange
class TestGranuleRange:
    def test_length_and_contains(self):
        r = GranuleRange(3, 8)
        assert len(r) == 5
        assert 3 in r and 7 in r
        assert 8 not in r and 2 not in r

    def test_empty_range(self):
        r = GranuleRange(4, 4)
        assert r.empty
        assert len(r) == 0
        assert 4 not in r

    def test_invalid_range_raises(self):
        with pytest.raises(ValueError):
            GranuleRange(5, 4)

    def test_iteration_order(self):
        assert list(GranuleRange(2, 6)) == [2, 3, 4, 5]

    def test_overlaps(self):
        assert GranuleRange(0, 5).overlaps(GranuleRange(4, 9))
        assert not GranuleRange(0, 5).overlaps(GranuleRange(5, 9))
        assert not GranuleRange(0, 5).overlaps(GranuleRange(8, 9))

    def test_adjacent(self):
        assert GranuleRange(0, 5).adjacent(GranuleRange(5, 9))
        assert GranuleRange(5, 9).adjacent(GranuleRange(0, 5))
        assert not GranuleRange(0, 5).adjacent(GranuleRange(6, 9))

    def test_intersection(self):
        got = GranuleRange(0, 8).intersection(GranuleRange(5, 12))
        assert (got.start, got.stop) == (5, 8)

    def test_intersection_disjoint_is_empty(self):
        assert GranuleRange(0, 3).intersection(GranuleRange(7, 9)).empty

    def test_split_at(self):
        a, b = GranuleRange(0, 10).split_at(4)
        assert (a.start, a.stop) == (0, 4)
        assert (b.start, b.stop) == (4, 10)

    def test_split_at_boundary(self):
        a, b = GranuleRange(0, 10).split_at(0)
        assert a.empty and len(b) == 10

    def test_split_outside_raises(self):
        with pytest.raises(ValueError):
            GranuleRange(2, 5).split_at(6)

    def test_take_clamps(self):
        head, rest = GranuleRange(0, 5).take(100)
        assert len(head) == 5 and rest.empty
        head, rest = GranuleRange(0, 5).take(-3)
        assert head.empty and len(rest) == 5


# ---------------------------------------------------------------- GranuleSet
class TestGranuleSet:
    def test_normalization_merges_adjacent_and_overlapping(self):
        s = GranuleSet.from_ranges([(0, 3), (3, 5), (4, 8), (10, 12)])
        assert s.ranges == (GranuleRange(0, 8), GranuleRange(10, 12))

    def test_from_ids(self):
        s = GranuleSet.from_ids([5, 1, 2, 3, 9])
        assert s.ranges == (GranuleRange(1, 4), GranuleRange(5, 6), GranuleRange(9, 10))
        assert len(s) == 5

    def test_universe_and_empty(self):
        assert len(GranuleSet.universe(7)) == 7
        assert not GranuleSet.empty()
        assert GranuleSet.universe(0) == GranuleSet.empty()

    def test_contains_binary_search(self):
        s = GranuleSet.from_ranges([(0, 5), (100, 105), (1000, 1001)])
        for g in [0, 4, 100, 104, 1000]:
            assert g in s
        for g in [-1, 5, 99, 105, 999, 1001]:
            assert g not in s

    def test_union(self):
        a = GranuleSet.from_ranges([(0, 5)])
        b = GranuleSet.from_ranges([(3, 8), (10, 12)])
        assert (a | b).ranges == (GranuleRange(0, 8), GranuleRange(10, 12))

    def test_intersection(self):
        a = GranuleSet.from_ranges([(0, 10), (20, 30)])
        b = GranuleSet.from_ranges([(5, 25)])
        assert (a & b).ranges == (GranuleRange(5, 10), GranuleRange(20, 25))

    def test_difference(self):
        a = GranuleSet.from_ranges([(0, 10)])
        b = GranuleSet.from_ranges([(3, 5), (7, 8)])
        assert (a - b).ranges == (
            GranuleRange(0, 3),
            GranuleRange(5, 7),
            GranuleRange(8, 10),
        )

    def test_difference_nothing_left(self):
        a = GranuleSet.from_ranges([(2, 6)])
        assert not (a - GranuleSet.from_ranges([(0, 10)]))

    def test_subset_and_disjoint(self):
        a = GranuleSet.from_ranges([(2, 4)])
        b = GranuleSet.from_ranges([(0, 10)])
        assert a.issubset(b)
        assert not b.issubset(a)
        assert a.isdisjoint(GranuleSet.from_ranges([(4, 6)]))
        assert not a.isdisjoint(GranuleSet.from_ranges([(3, 6)]))

    def test_complement(self):
        s = GranuleSet.from_ranges([(2, 4), (6, 8)])
        assert s.complement(10).ranges == (
            GranuleRange(0, 2),
            GranuleRange(4, 6),
            GranuleRange(8, 10),
        )

    def test_min_max(self):
        s = GranuleSet.from_ranges([(3, 5), (9, 11)])
        assert s.min() == 3
        assert s.max() == 10

    def test_min_max_empty_raise(self):
        with pytest.raises(ValueError):
            GranuleSet.empty().min()
        with pytest.raises(ValueError):
            GranuleSet.empty().max()

    def test_take_splits_across_ranges(self):
        s = GranuleSet.from_ranges([(0, 3), (10, 15)])
        head, rest = s.take(5)
        assert list(head) == [0, 1, 2, 10, 11]
        assert list(rest) == [12, 13, 14]

    def test_take_zero_and_all(self):
        s = GranuleSet.from_ranges([(0, 4)])
        head, rest = s.take(0)
        assert not head and rest == s
        head, rest = s.take(99)
        assert head == s and not rest

    def test_equality_and_hash(self):
        a = GranuleSet.from_ranges([(0, 3), (3, 6)])
        b = GranuleSet.from_ranges([(0, 6)])
        assert a == b
        assert hash(a) == hash(b)

    def test_iteration_is_sorted(self):
        s = GranuleSet.from_ids([9, 1, 5, 2])
        assert list(s) == sorted(s)


# ---------------------------------------------------------------- properties
ids_strategy = st.lists(st.integers(min_value=0, max_value=200), max_size=60)


@settings(max_examples=200, deadline=None)
@given(ids_strategy, ids_strategy)
def test_set_algebra_matches_python_sets(a_ids, b_ids):
    """GranuleSet algebra agrees with frozenset semantics."""
    a, b = GranuleSet.from_ids(a_ids), GranuleSet.from_ids(b_ids)
    sa, sb = set(a_ids), set(b_ids)
    assert set(a | b) == sa | sb
    assert set(a & b) == sa & sb
    assert set(a - b) == sa - sb
    assert a.issubset(b) == sa.issubset(sb)
    assert a.isdisjoint(b) == sa.isdisjoint(sb)
    assert len(a) == len(sa)


@settings(max_examples=200, deadline=None)
@given(ids_strategy)
def test_canonical_form_invariant(ids):
    """Ranges are sorted, disjoint, non-adjacent and non-empty."""
    s = GranuleSet.from_ids(ids)
    ranges = s.ranges
    for r in ranges:
        assert len(r) > 0
    for r1, r2 in zip(ranges, ranges[1:]):
        assert r1.stop < r2.start  # strict gap: no overlap, no adjacency


@settings(max_examples=100, deadline=None)
@given(ids_strategy, st.integers(min_value=0, max_value=80))
def test_take_partitions(ids, n):
    s = GranuleSet.from_ids(ids)
    head, rest = s.take(n)
    assert len(head) == min(n, len(s))
    assert (head | rest) == s
    assert head.isdisjoint(rest)
    if head and rest:
        assert head.max() < rest.min()


@settings(max_examples=100, deadline=None)
@given(ids_strategy, st.integers(min_value=1, max_value=300))
def test_complement_involution(ids, n):
    s = GranuleSet.from_ids(i for i in ids if i < n)
    assert s.complement(n).complement(n) == s
    assert len(s) + len(s.complement(n)) == n
