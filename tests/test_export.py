"""Tests for the metrics snapshot exporters (repro.obs.export)."""

from __future__ import annotations

import json

from repro.obs import MetricsRegistry, append_snapshot_jsonl, prometheus_text
from repro.obs.export import prometheus_name


class TestPrometheusName:
    def test_dots_become_underscores(self):
        assert prometheus_name("rundown.idle_seconds") == "rundown_idle_seconds"

    def test_leading_digit_gets_prefix(self):
        assert prometheus_name("9lives") == "_9lives"

    def test_valid_names_pass_through(self):
        assert prometheus_name("executive_busy_seconds") == "executive_busy_seconds"


class TestPrometheusText:
    def registry(self) -> MetricsRegistry:
        r = MetricsRegistry()
        r.counter("faults.injected_total", "injected faults").inc(3, kind="transient")
        r.counter("faults.injected_total").inc(1, kind="crash")
        r.gauge("scheduler.queue_depth", "ready tasks").set(7)
        h = r.histogram("task.seconds", "task durations", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        h.observe(5.0)
        return r

    def test_counter_series_with_help_and_type(self):
        text = prometheus_text(self.registry())
        assert "# HELP faults_injected_total injected faults" in text
        assert "# TYPE faults_injected_total counter" in text
        assert 'faults_injected_total{kind="transient"} 3' in text
        assert 'faults_injected_total{kind="crash"} 1' in text
        assert "# TYPE scheduler_queue_depth gauge" in text
        assert "scheduler_queue_depth 7" in text

    def test_histogram_buckets_are_cumulative(self):
        text = prometheus_text(self.registry())
        assert 'task_seconds_bucket{le="0.1"} 1' in text
        assert 'task_seconds_bucket{le="1.0"} 2' in text
        assert 'task_seconds_bucket{le="+Inf"} 3' in text
        assert "task_seconds_sum 5.55" in text
        assert "task_seconds_count 3" in text

    def test_snapshot_dict_input_matches_registry_input(self):
        registry = self.registry()
        assert prometheus_text(registry.snapshot()) == prometheus_text(registry)

    def test_empty_registry_renders_empty(self):
        assert prometheus_text(MetricsRegistry()) == ""

    def test_output_is_deterministic(self):
        assert prometheus_text(self.registry()) == prometheus_text(self.registry())


class TestSnapshotJsonl:
    def test_appends_tailable_lines(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        r = MetricsRegistry()
        r.counter("done").inc(2)
        append_snapshot_jsonl(r, path, meta={"run": "a"})
        r.counter("done").inc(3)
        append_snapshot_jsonl(r, path, meta={"run": "b"})
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert [l["meta"]["run"] for l in lines] == ["a", "b"]
        assert lines[0]["metrics"]["done"]["series"][""] == 2.0
        assert lines[1]["metrics"]["done"]["series"][""] == 5.0

    def test_meta_defaults_to_empty(self, tmp_path):
        path = tmp_path / "m.jsonl"
        append_snapshot_jsonl(MetricsRegistry(), path)
        line = json.loads(path.read_text())
        assert line == {"meta": {}, "metrics": {}}
