"""Tests for the particle-chain workload (real reverse-indirect maps)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.classifier import classify_pair
from repro.core.mapping import MappingKind
from repro.core.overlap import OverlapConfig
from repro.core.predicate import overlap_is_safe
from repro.executive import ExecutiveCosts, run_program
from repro.workloads.particles import ParticleChain, particle_program


class TestParticleChain:
    def test_validation(self):
        with pytest.raises(ValueError):
            ParticleChain(2)
        with pytest.raises(ValueError):
            ParticleChain(10, n_neighbors=10)
        with pytest.raises(ValueError):
            ParticleChain(10, dt=0)

    def test_neighbor_list_shape_and_range(self):
        c = ParticleChain(20, n_neighbors=4)
        assert c.nlist.shape == (4, 20)
        assert c.nlist.min() >= 0 and c.nlist.max() < 20
        # no particle is its own neighbour
        assert all(i not in c.nlist[:, i] for i in range(20))

    def test_neighbors_are_actually_nearest(self):
        c = ParticleChain(30, n_neighbors=2)
        d = np.abs(c._min_image(c.x[None, :] - c.x[:, None]))
        np.fill_diagonal(d, np.inf)
        for i in range(30):
            claimed = sorted(d[j, i] for j in c.nlist[:, i])
            truth = sorted(d[:, i])[:2]
            assert claimed == pytest.approx(truth)

    def test_momentum_conserved_initially_zero(self):
        c = ParticleChain(32, seed=3)
        assert abs(c.v.sum()) < 1e-12

    def test_positions_stay_in_box(self):
        c = ParticleChain(24, seed=1)
        for _ in range(50):
            c.step()
        assert (c.x >= 0).all() and (c.x < c.box).all()

    def test_energy_stays_bounded(self):
        c = ParticleChain(32, dt=0.005, seed=2)
        e0 = c.total_energy()
        for _ in range(100):
            c.step()
        assert c.total_energy() < 20 * (e0 + 1.0)

    def test_rebuild_tracks_movement(self):
        c = ParticleChain(16, seed=5)
        before = c.nlist.copy()
        for _ in range(40):
            c.step()
        # after substantial motion the list is recomputed (count increases)
        assert c.rebuilds > 1
        assert c.steps == 40
        assert before.shape == c.nlist.shape

    def test_uniform_lattice_forces_vanish(self):
        c = ParticleChain(16, n_neighbors=2, seed=0)
        c.x = np.arange(16) * c.rest_length  # perfect lattice
        c.nlist = c.build_neighbor_list()
        f = c.forces()
        assert np.allclose(f, 0.0, atol=1e-9)


class TestParticleProgram:
    def test_structure(self):
        prog = particle_program(24, n_steps=2)
        assert prog.phase_sequence() == [
            "forces0", "integrate0", "forces1", "integrate1",
        ]
        assert prog.mapping_between("forces0", "integrate0").kind is MappingKind.IDENTITY
        assert prog.mapping_between("integrate0", "forces1").kind is MappingKind.NULL

    def test_map_generators_run_real_physics(self):
        prog = particle_program(20, n_neighbors=3, n_steps=2, seed=4)
        rng = np.random.default_rng(0)
        nl0 = prog.map_generators["NLIST0"](rng)
        nl1 = prog.map_generators["NLIST1"](rng)
        assert nl0.shape == nl1.shape == (3, 20)
        # the chain moved between steps, so at least one neighbour changed
        chain = ParticleChain(20, 3, seed=4)
        assert np.array_equal(nl0, chain.nlist)

    def test_footprints_classify_identity_within_step(self):
        prog = particle_program(24)
        c = classify_pair(prog.phases["forces0"], prog.phases["integrate0"])
        assert c.kind is MappingKind.IDENTITY

    def test_identity_link_is_safe(self):
        prog = particle_program(24)
        m = prog.mapping_between("forces0", "integrate0")
        rng = np.random.default_rng(0)
        maps = {"NLIST0": prog.map_generators["NLIST0"](rng)}
        report = overlap_is_safe(
            prog.phases["forces0"], prog.phases["integrate0"], m, maps=maps
        )
        assert report.safe

    def test_identity_link_unsafe_without_maps(self):
        """Without the materialized neighbour list the theorem cannot be
        checked; the checker refuses rather than guesses."""
        prog = particle_program(24)
        m = prog.mapping_between("forces0", "integrate0")
        report = overlap_is_safe(prog.phases["forces0"], prog.phases["integrate0"], m)
        assert not report.safe

    def test_executive_verifies_safety_with_materialized_maps(self):
        prog = particle_program(32, n_steps=2)
        r = run_program(prog, 4, config=OverlapConfig(verify_safety=True), seed=1)
        assert r.granules_executed == prog.total_granules()
        # the identity links within each step pass the check and overlap
        assert r.phase_stats[1].overlapped
        assert r.phase_stats[3].overlapped

    def test_runs_on_executive_with_overlap(self):
        prog = particle_program(48, n_steps=3)
        costs = ExecutiveCosts(0.05, 0.05, 0.05, 0.02, 0.02, 0.02, 0.001)
        rb = run_program(prog, 6, config=OverlapConfig.barrier(), costs=costs, seed=1)
        ro = run_program(prog, 6, config=OverlapConfig(), costs=costs, seed=1)
        assert rb.granules_executed == ro.granules_executed == prog.total_granules()
        assert ro.makespan < rb.makespan
        # the rebuilds show up as serial executive time
        assert rb.serial_time > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            particle_program(24, n_steps=0)
