"""Tests for task sizing policy."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.executive.splitting import TaskSizer


class TestTaskSizer:
    def test_paper_rule_two_tasks_per_processor(self):
        s = TaskSizer(tasks_per_processor=2.0)
        # 64 granules / (2 * 8 workers) = 4 granules per task
        assert s.task_size(64, 8) == 4
        assert s.n_tasks(64, 8) == 16

    def test_rounding_up(self):
        s = TaskSizer(tasks_per_processor=2.0)
        assert s.task_size(65, 8) == math.ceil(65 / 16)

    def test_min_task_size_floor(self):
        s = TaskSizer(tasks_per_processor=8.0, min_task_size=5)
        assert s.task_size(16, 8) == 5

    def test_max_task_size_ceiling(self):
        s = TaskSizer(tasks_per_processor=0.5, max_task_size=10)
        assert s.task_size(1000, 4) == 10

    def test_never_exceeds_phase(self):
        s = TaskSizer(tasks_per_processor=0.1, min_task_size=50)
        assert s.task_size(8, 4) == 8

    def test_validation(self):
        with pytest.raises(ValueError):
            TaskSizer(tasks_per_processor=0)
        with pytest.raises(ValueError):
            TaskSizer(min_task_size=0)
        with pytest.raises(ValueError):
            TaskSizer(min_task_size=5, max_task_size=4)
        s = TaskSizer()
        with pytest.raises(ValueError):
            s.task_size(0, 4)
        with pytest.raises(ValueError):
            s.task_size(4, 0)


@settings(max_examples=200, deadline=None)
@given(
    st.integers(min_value=1, max_value=100_000),
    st.integers(min_value=1, max_value=2000),
    st.floats(min_value=0.25, max_value=16, allow_nan=False),
)
def test_task_size_invariants(n, p, tpp):
    s = TaskSizer(tasks_per_processor=tpp)
    size = s.task_size(n, p)
    assert 1 <= size <= n
    # task count achieves at least the requested parallel slack when the
    # phase is large enough to allow it
    n_tasks = s.n_tasks(n, p)
    assert n_tasks * size >= n
    if n >= tpp * p:
        # double ceiling can halve the requested slack but no worse
        assert n_tasks >= tpp * p / 2 or size == 1
