"""Tests for executive cost configuration."""

from __future__ import annotations

import pytest

from repro.executive.costs import ExecutiveCosts


class TestExecutiveCosts:
    def test_defaults_nonnegative(self):
        c = ExecutiveCosts()
        assert c.cycle_time() == c.completion + c.enablement + c.assign

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ExecutiveCosts(assign=-1.0)

    def test_free_is_all_zero(self):
        c = ExecutiveCosts.free()
        assert c.cycle_time() == 0.0
        assert c.phase_init == 0.0 and c.map_entry == 0.0

    def test_scaled(self):
        c = ExecutiveCosts(1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0).scaled(0.5)
        assert c.assign == 0.5 and c.map_entry == 0.5

    def test_scaled_negative_rejected(self):
        with pytest.raises(ValueError):
            ExecutiveCosts().scaled(-1.0)

    def test_pax_like_targets_ratio(self):
        c = ExecutiveCosts.pax_like(granule_time=1.0, ratio=200.0)
        # one assign+completion+enablement cycle per granule of work:
        # worker time / mgmt time = 1 / (3c) = ratio
        assert 1.0 / c.cycle_time() == pytest.approx(200.0)
