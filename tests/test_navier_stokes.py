"""Tests for the Navier–Stokes workload (solver numerics and program)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.classifier import classify_pair
from repro.core.mapping import MappingKind, SeamMapping
from repro.workloads.navier_stokes import NavierStokes2D, navier_stokes_program


class TestSolver:
    def make(self, n=32):
        ns = NavierStokes2D(n, viscosity=1e-3, dt=0.002, n_jacobi=40)
        ns.init_shear_layer()
        return ns

    def test_projection_reduces_divergence(self):
        ns = self.make()
        ns.u += 0.1 * np.sin(np.linspace(0, 6, ns.n))[:, None]  # pollute
        div_before = float(np.abs(ns.divergence()).max())
        ns.step()
        div_after = float(np.abs(ns.divergence()).max())
        assert div_after < div_before

    def test_energy_does_not_explode(self):
        ns = self.make()
        e0 = ns.kinetic_energy()
        for _ in range(20):
            ns.step()
        assert ns.kinetic_energy() < 1.5 * e0

    def test_viscosity_decays_energy(self):
        ns = NavierStokes2D(32, viscosity=5e-2, dt=0.002, n_jacobi=30)
        ns.init_shear_layer()
        e0 = ns.kinetic_energy()
        for _ in range(30):
            ns.step()
        assert ns.kinetic_energy() < e0

    def test_zero_field_stays_zero(self):
        ns = NavierStokes2D(16)
        ns.step()
        assert np.allclose(ns.u, 0) and np.allclose(ns.v, 0)

    def test_pressure_nullspace_pinned(self):
        ns = self.make(16)
        ns.step()
        assert abs(ns.p.mean()) < 1e-10

    def test_steps_counted(self):
        ns = self.make(16)
        ns.step()
        ns.step()
        assert ns.steps == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            NavierStokes2D(2)
        with pytest.raises(ValueError):
            NavierStokes2D(16, dt=0.0)
        with pytest.raises(ValueError):
            NavierStokes2D(16, n_jacobi=0)


class TestProgram:
    def test_phase_chain_structure(self):
        prog = navier_stokes_program(16, n_jacobi=3, rows_per_granule=2, n_steps=2)
        seq = prog.phase_sequence()
        assert seq[0] == "momentum0"
        assert seq.count("momentum0") == 1
        assert len([s for s in seq if s.startswith("jacobi0")]) == 3
        assert seq[-1] == "correct1"

    def test_link_kinds(self):
        prog = navier_stokes_program(16, n_jacobi=2)
        kinds = {
            (a, b): prog.mapping_between(a, b).kind for a, b, _ in prog.adjacent_pairs()
        }
        assert kinds[("momentum0", "rhs0")] is MappingKind.SEAM
        # the first Jacobi sweep depends on its predecessor only through
        # the right-hand side -> identity; later sweeps carry the stencil
        assert kinds[("rhs0", "jacobi0_0")] is MappingKind.IDENTITY
        assert kinds[("jacobi0_0", "jacobi0_1")] is MappingKind.SEAM
        assert kinds[("jacobi0_1", "correct0")] is MappingKind.SEAM

    def test_footprints_classify_to_declared_kinds(self):
        prog = navier_stokes_program(16, n_jacobi=2)
        for a, b, serial in prog.adjacent_pairs():
            c = classify_pair(prog.phases[a], prog.phases[b], serial)
            declared = prog.mapping_between(a, b).kind
            assert c.kind is declared, (a, b, c.kind, declared, c.reason)

    def test_validation(self):
        with pytest.raises(ValueError):
            navier_stokes_program(16, rows_per_granule=0)

    def test_runs_with_overlap_and_gains(self):
        from repro.core.overlap import OverlapConfig
        from repro.executive import ExecutiveCosts, TaskSizer, run_program

        prog = navier_stokes_program(24, n_jacobi=4, rows_per_granule=2, cost_per_cell=0.01)
        costs = ExecutiveCosts(0.05, 0.05, 0.05, 0.02, 0.02, 0.02, 0.001)
        rb = run_program(prog, 6, config=OverlapConfig.barrier(), costs=costs, sizer=TaskSizer(2.0))
        ro = run_program(prog, 6, config=OverlapConfig(), costs=costs, sizer=TaskSizer(2.0))
        assert ro.granules_executed == rb.granules_executed
        assert ro.makespan < rb.makespan
