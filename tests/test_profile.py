"""Tests for the rundown profiler's waterfall side (repro.obs.profile).

The invariant under test: every processor's time over ``[0, makespan)``
is *fully* accounted — busy categories plus idle attributions sum to the
makespan, per resource, with no gaps and no double counting.
"""

from __future__ import annotations

import json

import pytest

from repro.core.mapping import IdentityMapping
from repro.faults import FaultPlan, RecoveryPolicy, TransientGranuleError
from repro.obs import WaterfallReport, analyze_run, analyze_saved
from repro.obs.profile import IDLE_CATEGORIES, build_waterfall
from repro.sim.events import EventKind
from repro.sim.persist import result_summary, trace_to_dict
from repro.sim.trace import Interval, Trace
from repro.executive import ExecutiveSimulation
from tests.conftest import two_phase_program

APPROX = pytest.approx


def synthetic_trace() -> Trace:
    """Two workers over [0, 10): P0 busy 1..4 and 6..9, P1 busy 2..8."""
    t = Trace()
    t.add_interval(Interval("P0", 1.0, 4.0, "compute", "a"))
    t.add_interval(Interval("P0", 6.0, 9.0, "compute", "b"))
    t.add_interval(Interval("P1", 2.0, 8.0, "compute", "c"))
    t.add_interval(Interval("EXEC", 0.0, 1.0, "mgmt", "init"))
    return t


def assert_fully_accounted(report: WaterfallReport) -> None:
    for row in report.resources:
        assert row.busy_total + row.idle_total == APPROX(report.makespan), row.resource


class TestBuildWaterfall:
    def test_full_accounting_synthetic(self):
        report = build_waterfall(synthetic_trace(), n_workers=2, makespan=10.0)
        assert_fully_accounted(report)
        p0 = next(r for r in report.resources if r.resource == "P0")
        assert p0.busy["compute"] == APPROX(6.0)
        assert p0.idle["startup_wait"] == APPROX(1.0)
        # the 4..6 gap and the 9..10 tail are unattributed idle
        assert p0.idle["idle"] == APPROX(3.0)

    def test_barrier_wait_carved_from_rundown_windows(self):
        report = build_waterfall(
            synthetic_trace(), n_workers=2, rundown_windows=[(8.0, 10.0)], makespan=10.0
        )
        assert_fully_accounted(report)
        p1 = next(r for r in report.resources if r.resource == "P1")
        # P1 idles 8..10, exactly the rundown window
        assert p1.idle["barrier_wait"] == APPROX(2.0)
        p0 = next(r for r in report.resources if r.resource == "P0")
        # P0 is busy until 9, so only 9..10 of its idle falls in the window
        assert p0.idle["barrier_wait"] == APPROX(1.0)

    def test_retry_backoff_takes_priority_over_barrier(self):
        t = synthetic_trace()
        t.log(4.0, EventKind.TASK_RETRY, "P0", backoff=2.0)
        report = build_waterfall(
            t, n_workers=2, rundown_windows=[(4.0, 6.0)], makespan=10.0
        )
        assert_fully_accounted(report)
        p0 = next(r for r in report.resources if r.resource == "P0")
        # the 4..6 gap is retry backoff, not barrier_wait, despite both applying
        assert p0.idle["retry_backoff"] == APPROX(2.0)
        assert p0.idle["barrier_wait"] == APPROX(0.0)

    def test_stall_wait_before_watchdog_record(self):
        t = synthetic_trace()
        t.log(9.5, EventKind.PHASE_STALLED, "A")
        report = build_waterfall(t, n_workers=2, makespan=10.0)
        assert_fully_accounted(report)
        # dead air = last interval end (9.0) .. detection (9.5) on every idle resource
        p1 = next(r for r in report.resources if r.resource == "P1")
        assert p1.idle["stall_wait"] == APPROX(0.5)

    def test_phase_rows_from_records(self):
        t = synthetic_trace()
        t.log(0.0, EventKind.PHASE_START, "A")
        t.log(9.0, EventKind.PHASE_END, "A")
        report = build_waterfall(t, n_workers=2, makespan=10.0)
        assert [p.phase for p in report.phases] == ["A"]
        row = report.phases[0]
        assert row.duration == APPROX(9.0)
        assert row.compute == APPROX(12.0)  # 6 (P0) + 6 (P1)
        assert row.idle == APPROX(2 * 9.0 - 12.0)

    def test_render_and_dict_smoke(self):
        report = build_waterfall(synthetic_trace(), n_workers=2, makespan=10.0)
        text = report.render_text()
        assert "run waterfall" in text and "compute" in text
        doc = report.to_dict()
        assert doc["kind"] == "waterfall"
        assert set(doc["totals"]["idle"]) == set(IDLE_CATEGORIES)
        json.dumps(doc)  # JSON-able throughout


class TestCriticalPath:
    def test_chain_tiles_the_makespan(self):
        report = build_waterfall(synthetic_trace(), n_workers=2, makespan=10.0)
        path = report.critical_path
        assert path, "expected a non-empty critical path"
        # chronological, and durations + waits account for the full makespan
        covered = sum(s.end - s.start + s.wait_after for s in path)
        assert covered + path[0].start == APPROX(10.0)
        for early, late in zip(path, path[1:]):
            assert early.end <= late.start + 1e-9

    def test_wait_names_the_gap(self):
        report = build_waterfall(synthetic_trace(), n_workers=2, makespan=10.0)
        # last step is P0's b interval ending at 9, followed by 1s of wait
        last = report.critical_path[-1]
        assert last.resource == "P0"
        assert last.wait_after == APPROX(1.0)


class TestAnalyzeRun:
    def run_faulted(self):
        program = two_phase_program(IdentityMapping(), n=32)
        sim = ExecutiveSimulation(
            program,
            4,
            seed=11,
            faults=FaultPlan(seed=3, faults=(TransientGranuleError(0.2),)),
            recovery=RecoveryPolicy(max_retries=8),
        )
        return sim.run()

    def test_faulted_run_attributes_backoff(self):
        result = self.run_faulted()
        report = analyze_run(result)
        assert_fully_accounted(report)
        totals = report.totals()
        assert totals["idle"]["retry_backoff"] > 0.0
        assert report.n_workers == 4
        assert report.phases, "expected per-phase rows from phase stats"

    def test_saved_document_matches_live_analysis(self):
        result = self.run_faulted()
        live = analyze_run(result)
        doc = {"summary": result_summary(result), "trace": trace_to_dict(result.trace)}
        saved = analyze_saved(json.loads(json.dumps(doc)))
        assert saved.makespan == APPROX(live.makespan)
        assert saved.n_workers == live.n_workers
        live_totals, saved_totals = live.totals(), saved.totals()
        for group in ("busy", "idle"):
            for cat, value in live_totals[group].items():
                assert saved_totals[group][cat] == APPROX(value, abs=1e-6), (group, cat)

    def test_bare_trace_still_analyzes(self):
        result = self.run_faulted()
        report = analyze_saved(trace_to_dict(result.trace))
        assert_fully_accounted(report)
        assert report.n_workers == 4  # inferred from P* resources
