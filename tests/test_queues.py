"""Tests for the conflict queue (DCLL) and the waiting computation queue."""

from __future__ import annotations

from collections import deque

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.executive.queues import ConflictQueue, WaitingComputationQueue


class TestConflictQueue:
    def test_append_popleft_fifo(self):
        q = ConflictQueue()
        for x in "abc":
            q.append(x)
        assert [q.popleft() for _ in range(3)] == ["a", "b", "c"]
        assert len(q) == 0

    def test_appendleft(self):
        q = ConflictQueue()
        q.append("b")
        q.appendleft("a")
        assert list(q) == ["a", "b"]

    def test_remove_interior(self):
        q = ConflictQueue()
        a, b, c = ["a"], ["b"], ["c"]  # unique objects: removal is by identity
        for x in (a, b, c):
            q.append(x)
        q.remove(b)
        assert list(q) == [a, c]
        assert q.check_ring()

    def test_remove_missing_raises(self):
        q = ConflictQueue()
        with pytest.raises(KeyError):
            q.remove("nope")

    def test_popleft_empty_raises(self):
        with pytest.raises(IndexError):
            ConflictQueue().popleft()

    def test_contains(self):
        q = ConflictQueue()
        q.append("x")
        assert "x" in q
        q.popleft()
        assert "x" not in q

    def test_ring_structure_maintained(self):
        q = ConflictQueue()
        for i in range(10):
            q.append(i)
        q.remove(0)
        q.remove(9)
        q.remove(5)
        assert q.check_ring()
        assert list(q) == [1, 2, 3, 4, 6, 7, 8]

    def test_removal_during_iteration_safe(self):
        q = ConflictQueue()
        for i in range(5):
            q.append(i)
        for v in q:
            if v % 2 == 0:
                q.remove(v)
        assert list(q) == [1, 3]

    def test_identity_not_equality(self):
        # two equal-but-distinct values are tracked separately
        q = ConflictQueue()
        a, b = [1], [1]
        q.append(a)
        q.append(b)
        q.remove(a)
        assert list(q) == [b]


@settings(max_examples=150, deadline=None)
@given(
    st.lists(
        st.tuples(st.sampled_from(["append", "appendleft", "popleft", "remove"]), st.integers(0, 20)),
        max_size=60,
    )
)
def test_conflict_queue_matches_deque_model(ops):
    """The DCLL behaves exactly like collections.deque under the same ops."""
    q = ConflictQueue()
    model: deque = deque()
    counter = 0
    live: dict[int, object] = {}
    for op, arg in ops:
        if op == "append":
            obj = ("v", counter)
            counter += 1
            q.append(obj)
            model.append(obj)
            live[id(obj)] = obj
        elif op == "appendleft":
            obj = ("v", counter)
            counter += 1
            q.appendleft(obj)
            model.appendleft(obj)
        elif op == "popleft":
            if model:
                assert q.popleft() == model.popleft()
            else:
                with pytest.raises(IndexError):
                    q.popleft()
        else:  # remove the arg-th element of the model, if any
            if model:
                obj = model[arg % len(model)]
                model.remove(obj)
                q.remove(obj)
        assert list(q) == list(model)
        assert len(q) == len(model)
        assert q.check_ring()


class TestWaitingComputationQueue:
    def test_elevated_served_first(self):
        q = WaitingComputationQueue()
        q.push("n1")
        q.push("e1", elevated=True)
        q.push("n2")
        q.push("e2", elevated=True)
        assert [q.pop() for _ in range(4)] == ["e1", "e2", "n1", "n2"]

    def test_push_front_within_class(self):
        q = WaitingComputationQueue()
        q.push("a")
        q.push_front("b")
        assert q.pop() == "b"

    def test_peek_does_not_remove(self):
        q = WaitingComputationQueue()
        q.push("x")
        assert q.peek() == "x"
        assert len(q) == 1

    def test_peek_empty_raises(self):
        with pytest.raises(IndexError):
            WaitingComputationQueue().peek()

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            WaitingComputationQueue().pop()

    def test_remove_from_either_class(self):
        q = WaitingComputationQueue()
        q.push("n")
        q.push("e", elevated=True)
        q.remove("e")
        q.remove("n")
        assert len(q) == 0

    def test_iteration_order(self):
        q = WaitingComputationQueue()
        q.push("n1")
        q.push("e1", elevated=True)
        assert list(q) == ["e1", "n1"]

    def test_contains(self):
        q = WaitingComputationQueue()
        q.push("x")
        assert "x" in q and "y" not in q

    def test_bool(self):
        q = WaitingComputationQueue()
        assert not q
        q.push("x")
        assert q
