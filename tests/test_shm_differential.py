"""Hypothesis differential tests for the zero-copy and incremental paths.

Two substitution properties back the grid engine's correctness claims:

1. **Shared memory is invisible.**  Any mapping computation fed a
   :class:`SharedMapStore` attachment must produce element-identical
   results to the same computation fed the plain dict of arrays the
   store was created from — `required_for` / `required_for_many` /
   `enabled_by` never see the difference.
2. **Incremental rebuild is invisible.**  `rebuild_targets` (the cached
   suffix-rebuild the grid engine uses across `target_fraction` points)
   must equal a cold `CompositeGranuleMap.build` of the new target.
"""

from __future__ import annotations

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.enablement import CompositeGranuleMap, CompositeMapCache, maps_fingerprint
from repro.core.granule import GranuleSet
from repro.core.mapping import ForwardIndirectMapping, ReverseIndirectMapping
from repro.sweep.shm import SharedMapStore

# Small-but-jagged spaces: enough to exercise group partitioning and
# ragged final groups without slowing the suite down.
dims = st.tuples(st.integers(1, 40), st.integers(1, 40))


@st.composite
def indirect_case(draw):
    """A mapping, its concrete map dict, and the space dimensions."""
    n_pred, n_succ = draw(dims)
    fan = draw(st.integers(1, 4))
    seed = draw(st.integers(0, 2**20))
    rng = np.random.default_rng(seed)
    if draw(st.booleans()):
        mapping = ReverseIndirectMapping("IMAP", fan_in=fan)
        maps = {"IMAP": rng.integers(0, n_pred, size=(fan, n_succ))}
    else:
        mapping = ForwardIndirectMapping("FMAP", fan_out=fan)
        maps = {"FMAP": rng.integers(0, n_succ, size=(fan, n_pred))}
    return mapping, maps, n_pred, n_succ


@st.composite
def granule_subset(draw, n):
    """A random subset of [0, n) as a GranuleSet (possibly empty)."""
    ids = draw(st.sets(st.integers(0, n - 1), max_size=n))
    return GranuleSet.from_sorted_ids(np.array(sorted(ids), dtype=np.int64))


class TestSharedStoreSubstitution:
    @settings(max_examples=60, deadline=None)
    @given(case=indirect_case(), data=st.data())
    def test_required_for_is_element_identical(self, case, data):
        mapping, maps, n_pred, n_succ = case
        successors = data.draw(granule_subset(n_succ))
        with SharedMapStore.create(maps) as store:
            attached = SharedMapStore.attach(store.descriptors())
            try:
                via_dict = mapping.required_for(successors, n_pred, n_succ, maps)
                via_store = mapping.required_for(successors, n_pred, n_succ, attached)
            finally:
                attached.close()
        assert via_store == via_dict

    @settings(max_examples=60, deadline=None)
    @given(case=indirect_case(), group_size=st.integers(1, 9))
    def test_required_for_many_is_element_identical(self, case, group_size):
        mapping, maps, n_pred, n_succ = case
        groups = CompositeGranuleMap._chunk(GranuleSet.universe(n_succ), group_size)
        with SharedMapStore.create(maps) as store:
            attached = SharedMapStore.attach(store.descriptors())
            try:
                via_dict = mapping.required_for_many(groups, n_pred, n_succ, maps)
                via_store = mapping.required_for_many(groups, n_pred, n_succ, attached)
            finally:
                attached.close()
        assert via_store == via_dict

    @settings(max_examples=60, deadline=None)
    @given(case=indirect_case(), data=st.data())
    def test_enabled_by_is_element_identical(self, case, data):
        mapping, maps, n_pred, n_succ = case
        completed = data.draw(granule_subset(n_pred))
        with SharedMapStore.create(maps) as store:
            via_dict = mapping.enabled_by(completed, n_pred, n_succ, maps)
            via_store = mapping.enabled_by(completed, n_pred, n_succ, store)
        assert via_store == via_dict

    @settings(max_examples=30, deadline=None)
    @given(case=indirect_case(), group_size=st.integers(1, 6))
    def test_composite_build_matches_through_store(self, case, group_size):
        mapping, maps, n_pred, n_succ = case
        with SharedMapStore.create(maps) as store:
            via_dict = CompositeGranuleMap.build(
                mapping, n_pred, n_succ, maps, group_size=group_size
            )
            via_store = CompositeGranuleMap.build(
                mapping, n_pred, n_succ, store, group_size=group_size
            )
        assert via_store.groups == via_dict.groups


class TestIncrementalRebuild:
    @settings(max_examples=60, deadline=None)
    @given(case=indirect_case(), group_size=st.integers(1, 6), data=st.data())
    def test_rebuild_targets_matches_cold_build(self, case, group_size, data):
        mapping, maps, n_pred, n_succ = case
        target = data.draw(granule_subset(n_succ))
        target = target if target else None  # empty target -> full space
        full = CompositeGranuleMap.build(
            mapping, n_pred, n_succ, maps, group_size=group_size
        )
        rebuilt = full.rebuild_targets(target)
        cold = CompositeGranuleMap.build(
            mapping, n_pred, n_succ, maps, group_size=group_size, target=target
        )
        assert rebuilt.groups == cold.groups
        # the incremental path must actually reuse the shared prefix: the
        # first groups of a prefix target partition exist in the full map
        assert rebuilt.rebuilt_groups <= len(rebuilt.groups)

    @settings(max_examples=30, deadline=None)
    @given(case=indirect_case(), group_size=st.integers(1, 6), frac=st.floats(0.1, 1.0))
    def test_cache_hit_equals_cold_build_for_prefix_targets(self, case, group_size, frac):
        mapping, maps, n_pred, n_succ = case
        n_target = max(1, int(n_succ * frac))
        target, _ = GranuleSet.universe(n_succ).take(n_target)
        cache = CompositeMapCache()
        warm_full = cache.build(mapping, n_pred, n_succ, maps, group_size=group_size)
        via_cache = cache.build(
            mapping, n_pred, n_succ, maps, group_size=group_size, target=target
        )
        cold = CompositeGranuleMap.build(
            mapping, n_pred, n_succ, maps, group_size=group_size, target=target
        )
        assert via_cache.groups == cold.groups
        assert cache.hits == 1 and cache.misses == 1
        # prefix chunking aligns every whole target group with the full
        # map's partition; only a ragged boundary group (target size not a
        # multiple of group_size, short of the full space) recomputes
        aligned = n_target % group_size == 0 or n_target == n_succ
        assert via_cache.rebuilt_groups == (0 if aligned else 1)
        assert warm_full.rebuilt_groups == len(warm_full.groups)

    @settings(max_examples=30, deadline=None)
    @given(case=indirect_case(), group_size=st.integers(1, 6))
    def test_cache_misses_on_different_map_contents(self, case, group_size):
        mapping, maps, n_pred, n_succ = case
        # same shapes and dtypes, different (in-range) contents
        other = {k: np.ascontiguousarray(np.flip(v, axis=1)) for k, v in maps.items()}
        assume(any(not np.array_equal(maps[k], other[k]) for k in maps))
        cache = CompositeMapCache()
        a = cache.build(mapping, n_pred, n_succ, maps, group_size=group_size)
        b = cache.build(mapping, n_pred, n_succ, other, group_size=group_size)
        assert cache.misses == 2
        assert maps_fingerprint(maps) != maps_fingerprint(other)
        cold = CompositeGranuleMap.build(
            mapping, n_pred, n_succ, other, group_size=group_size
        )
        assert b.groups == cold.groups
