"""Tests for PARALLEL(x, y) and the overlap-safety theorem check."""

from __future__ import annotations

import numpy as np

from repro.core.access import AccessPattern, AffineIndex, AllIndex, ArrayRef
from repro.core.mapping import IdentityMapping, SeamMapping, UniversalMapping
from repro.core.phase import PhaseSpec
from repro.core.predicate import (
    AccessConflictPredicate,
    AlwaysParallel,
    check_intra_phase,
    overlap_is_safe,
)


def copy_phase(name: str, src: str, dst: str, n: int = 16) -> PhaseSpec:
    return PhaseSpec(
        name,
        n,
        access=AccessPattern(
            reads=(ArrayRef(src, AffineIndex()),), writes=(ArrayRef(dst, AffineIndex()),)
        ),
    )


class TestAccessConflictPredicate:
    def test_intra_phase_axiom_holds_for_identity_copy(self):
        p = copy_phase("c", "A", "B")
        assert check_intra_phase(p)

    def test_intra_phase_axiom_fails_for_shared_scalar(self):
        p = PhaseSpec(
            "bad",
            8,
            access=AccessPattern(writes=(ArrayRef("acc", AllIndex()),)),
        )
        assert not check_intra_phase(p)

    def test_missing_footprints_conservative(self):
        pred = AccessConflictPredicate()
        a = PhaseSpec("a", 4)
        b = PhaseSpec("b", 4)
        # same phase: the paper's axiom grants parallelism
        assert pred(a, 0, a, 1)
        # cross phase without declarations: refuse
        assert not pred(a, 0, b, 0)

    def test_always_parallel(self):
        p = AlwaysParallel()
        assert p(PhaseSpec("a", 1), 0, PhaseSpec("b", 1), 0)


class TestOverlapIsSafe:
    def test_identity_chain_is_safe(self):
        p1 = copy_phase("p1", "A", "B")
        p2 = copy_phase("p2", "B", "C")
        report = overlap_is_safe(p1, p2, IdentityMapping())
        assert report.safe
        assert report.pairs_checked > 0

    def test_universal_disjoint_is_safe(self):
        p1 = copy_phase("p1", "A", "B")
        p2 = copy_phase("p2", "C", "D")
        assert overlap_is_safe(p1, p2, UniversalMapping()).safe

    def test_universal_on_dependent_phases_is_unsafe(self):
        # claiming a universal mapping for a true dependence must fail:
        # successor granule i reads B(i) which uncompleted current granules
        # will still write
        p1 = copy_phase("p1", "A", "B")
        p2 = copy_phase("p2", "B", "C")
        report = overlap_is_safe(p1, p2, UniversalMapping())
        assert not report.safe
        assert report.violations

    def test_identity_too_weak_for_stencil_is_unsafe(self):
        # successor reads neighbours; identity enablement releases granule i
        # after only granule i completed — neighbour i+1 still pending
        writer = PhaseSpec(
            "w", 16, access=AccessPattern(writes=(ArrayRef("u", AffineIndex()),))
        )
        reader = PhaseSpec(
            "r",
            16,
            access=AccessPattern(
                reads=(
                    ArrayRef("u", AffineIndex(1, -1)),
                    ArrayRef("u", AffineIndex(1, 0)),
                    ArrayRef("u", AffineIndex(1, 1)),
                ),
                writes=(ArrayRef("v", AffineIndex()),),
            ),
        )
        assert not overlap_is_safe(writer, reader, IdentityMapping()).safe
        # ...but the seam mapping with the right offsets is safe
        assert overlap_is_safe(writer, reader, SeamMapping((-1, 0, 1))).safe

    def test_missing_footprint_is_unsafe(self):
        p1 = PhaseSpec("p1", 8)
        p2 = PhaseSpec("p2", 8)
        assert not overlap_is_safe(p1, p2, UniversalMapping()).safe

    def test_report_truthiness(self):
        p1 = copy_phase("p1", "A", "B")
        p2 = copy_phase("p2", "B", "C")
        assert bool(overlap_is_safe(p1, p2, IdentityMapping()))

    def test_large_phase_sampled(self):
        p1 = copy_phase("p1", "A", "B", n=5000)
        p2 = copy_phase("p2", "B", "C", n=5000)
        report = overlap_is_safe(p1, p2, IdentityMapping(), sample_limit=500)
        assert report.safe
        assert not report.exhaustive

    def test_custom_predicate_injection(self):
        p1 = PhaseSpec("p1", 8)
        p2 = PhaseSpec("p2", 8)
        report = overlap_is_safe(p1, p2, UniversalMapping(), predicate=AlwaysParallel())
        assert report.safe

    def test_deterministic_given_rng(self):
        p1 = copy_phase("p1", "A", "B", n=300)
        p2 = copy_phase("p2", "B", "C", n=300)
        r1 = overlap_is_safe(p1, p2, IdentityMapping(), rng=np.random.default_rng(5))
        r2 = overlap_is_safe(p1, p2, IdentityMapping(), rng=np.random.default_rng(5))
        assert r1.pairs_checked == r2.pairs_checked
