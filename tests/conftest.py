"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.overlap import OverlapConfig, OverlapPolicy
from repro.core.phase import ConstantCost, PhaseProgram, PhaseSpec
from repro.executive import ExecutiveCosts, TaskSizer


@pytest.fixture
def small_costs() -> ExecutiveCosts:
    """Modest management costs: visible but not dominating."""
    return ExecutiveCosts(
        phase_init=0.1,
        assign=0.1,
        completion=0.1,
        split=0.05,
        successor_split=0.05,
        enablement=0.05,
        map_entry=0.001,
        dispatch_overhead=0.0,
    )


@pytest.fixture
def free_costs() -> ExecutiveCosts:
    """Zero-cost executive: isolates pure scheduling effects."""
    return ExecutiveCosts.free()


@pytest.fixture
def sizer() -> TaskSizer:
    return TaskSizer(tasks_per_processor=2.0)


@pytest.fixture
def barrier_config() -> OverlapConfig:
    return OverlapConfig.barrier()


@pytest.fixture
def overlap_config() -> OverlapConfig:
    return OverlapConfig(policy=OverlapPolicy.NEXT_PHASE)


def two_phase_program(mapping, n=64, cost=1.0) -> PhaseProgram:
    """A simple two-phase chain used across scheduler tests."""
    return PhaseProgram.chain(
        [PhaseSpec("A", n, ConstantCost(cost)), PhaseSpec("B", n, ConstantCost(cost))],
        [mapping],
    )
