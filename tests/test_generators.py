"""Tests for stochastic cost models and synthetic chain builders."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.granule import GranuleSet
from repro.core.mapping import MappingKind
from repro.workloads.generators import (
    ConditionalCost,
    LognormalCost,
    UniformCost,
    mapping_of_kind,
    synthetic_chain,
)


class TestUniformCost:
    def test_bounds(self):
        c = UniformCost(0.5, 1.5)
        rng = np.random.default_rng(0)
        xs = [c.sample(i, rng) for i in range(200)]
        assert all(0.5 <= x <= 1.5 for x in xs)
        assert c.mean() == 1.0

    def test_sample_total_matches_scale(self):
        c = UniformCost(1.0, 1.0)
        rng = np.random.default_rng(0)
        assert c.sample_total(GranuleSet.universe(10), rng) == pytest.approx(10.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            UniformCost(2.0, 1.0)
        with pytest.raises(ValueError):
            UniformCost(-1.0, 1.0)


class TestLognormalCost:
    def test_mean_calibration(self):
        c = LognormalCost(mean_value=2.0, sigma=0.7)
        rng = np.random.default_rng(1)
        xs = c.sample_total(GranuleSet.universe(20000), rng) / 20000
        assert xs == pytest.approx(2.0, rel=0.05)
        assert c.mean() == 2.0

    def test_positive(self):
        c = LognormalCost(1.0, 1.0)
        rng = np.random.default_rng(2)
        assert all(c.sample(i, rng) > 0 for i in range(100))

    def test_validation(self):
        with pytest.raises(ValueError):
            LognormalCost(0.0)
        with pytest.raises(ValueError):
            LognormalCost(1.0, -0.1)


class TestConditionalCost:
    def test_skip_fraction(self):
        c = ConditionalCost(base_mean=1.0, skip_probability=0.4, skip_cost=0.0)
        rng = np.random.default_rng(3)
        xs = np.array([c.sample(i, rng) for i in range(5000)])
        assert np.mean(xs == 0.0) == pytest.approx(0.4, abs=0.03)

    def test_mean(self):
        c = ConditionalCost(base_mean=2.0, skip_probability=0.5, skip_cost=0.0)
        assert c.mean() == 1.0

    def test_sample_total_consistent_with_mean(self):
        c = ConditionalCost(base_mean=1.0, skip_probability=0.25, skip_cost=0.05)
        rng = np.random.default_rng(4)
        total = c.sample_total(GranuleSet.universe(20000), rng)
        assert total / 20000 == pytest.approx(c.mean(), rel=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            ConditionalCost(skip_probability=1.5)
        with pytest.raises(ValueError):
            ConditionalCost(base_mean=-1.0)


class TestSyntheticChain:
    def test_phase_count_and_names(self):
        prog = synthetic_chain([MappingKind.IDENTITY, MappingKind.NULL], n_granules=8)
        assert prog.phase_sequence() == ["S0", "S1", "S2"]

    def test_per_phase_granule_counts(self):
        prog = synthetic_chain([MappingKind.IDENTITY], n_granules=[4, 9])
        assert prog.phases["S0"].n_granules == 4
        assert prog.phases["S1"].n_granules == 9

    def test_granule_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            synthetic_chain([MappingKind.IDENTITY], n_granules=[4])

    def test_indirect_links_get_generators(self):
        prog = synthetic_chain(
            [MappingKind.REVERSE_INDIRECT, MappingKind.FORWARD_INDIRECT], n_granules=8, fan_in=3
        )
        assert "MAP0" in prog.map_generators and "MAP1" in prog.map_generators
        rng = np.random.default_rng(0)
        assert prog.map_generators["MAP0"](rng).shape == (3, 8)
        assert prog.map_generators["MAP1"](rng).shape == (8,)

    def test_mapping_of_kind_covers_taxonomy(self):
        for kind in MappingKind:
            m = mapping_of_kind(kind)
            assert m.kind is kind


class TestExponentialCost:
    def test_mean_calibration(self):
        from repro.workloads.generators import ExponentialCost

        c = ExponentialCost(mean_value=2.0)
        rng = np.random.default_rng(5)
        total = c.sample_total(GranuleSet.universe(20000), rng)
        assert total / 20000 == pytest.approx(2.0, rel=0.05)
        assert c.mean() == 2.0

    def test_positive_samples(self):
        from repro.workloads.generators import ExponentialCost

        c = ExponentialCost()
        rng = np.random.default_rng(1)
        assert all(c.sample(i, rng) > 0 for i in range(100))

    def test_validation(self):
        from repro.workloads.generators import ExponentialCost

        with pytest.raises(ValueError):
            ExponentialCost(0.0)
