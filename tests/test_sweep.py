"""Tests for the parallel sweep runner (`repro.sweep`).

The load-bearing property is *pool-size independence*: a sweep's canonical
JSON report must be byte-identical whether it ran inline, or across any
number of worker processes, or replication-by-replication by hand.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.cli import main
from repro.obs import MetricsRegistry, record_sweep_metrics
from repro.sweep import (
    SweepSpec,
    build_workload,
    map_configs,
    replication_seed,
    run_replication,
    run_sweep,
    workload_names,
)

QUICK_SPEC = SweepSpec("identity", replications=3, seed=7, sim_workers=4)


def run_cli(*argv: str) -> tuple[int, str]:
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestSpec:
    def test_roundtrip(self):
        spec = SweepSpec(
            "casper", replications=2, seed=3, sim_workers=6, streams=2,
            barrier=True, tasks_per_processor=1.5, params={"n_streams": 2},
        )
        assert SweepSpec.from_dict(spec.to_dict()) == spec

    def test_validation(self):
        with pytest.raises(ValueError):
            SweepSpec("identity", replications=0)
        with pytest.raises(ValueError):
            SweepSpec("identity", streams=0)
        with pytest.raises(ValueError):
            SweepSpec("no-such-workload")

    def test_workload_registry(self):
        names = workload_names()
        assert "casper" in names and "checkerboard" in names
        for name in names:
            assert build_workload(name) is not None


class TestDeterminism:
    def test_replication_seeds_are_stable_and_distinct(self):
        seeds = [replication_seed(7, i) for i in range(32)]
        assert seeds == [replication_seed(7, i) for i in range(32)]
        assert len(set(seeds)) == 32
        # a different sweep seed reseeds every replication
        assert set(seeds).isdisjoint(replication_seed(8, i) for i in range(32))

    def test_run_replication_is_deterministic(self):
        spec_data = QUICK_SPEC.to_dict()
        a = run_replication(spec_data, 1)
        b = run_replication(spec_data, 1)
        assert a == b
        assert a["seed"] == replication_seed(QUICK_SPEC.seed, 1)
        assert json.dumps(a)  # summaries must be plain JSON data

    def test_serial_and_parallel_reports_byte_identical(self):
        serial = run_sweep(QUICK_SPEC, workers=1)
        parallel = run_sweep(QUICK_SPEC, workers=2)
        assert serial.report.to_json() == parallel.report.to_json()
        assert serial.pool_workers == 1 and parallel.pool_workers == 2

    def test_adding_replications_extends_not_perturbs(self):
        small = run_sweep(SweepSpec("identity", replications=2, seed=7, sim_workers=4))
        large = run_sweep(SweepSpec("identity", replications=3, seed=7, sim_workers=4))
        assert large.report.replications[:2] == small.report.replications[:2]

    def test_report_roundtrip(self):
        from repro.sweep import SweepReport

        outcome = run_sweep(QUICK_SPEC)
        text = outcome.report.to_json()
        assert SweepReport.from_json(text).to_json() == text


class TestAggregate:
    def test_aggregate_summarizes_replications(self):
        outcome = run_sweep(QUICK_SPEC)
        agg = outcome.report.aggregate()
        assert agg["replications"] == QUICK_SPEC.replications
        assert 0.0 < agg["utilization_mean"] <= 1.0
        eps = 1e-9  # the mean is a float sum; allow rounding at the boundary
        assert agg["utilization_min"] - eps <= agg["utilization_mean"] <= agg["utilization_max"] + eps
        assert agg["tasks_total"] > 0 and agg["granules_total"] > 0

    def test_empty_report_aggregate(self):
        from repro.sweep import SweepReport

        assert SweepReport(spec={}, replications=[]).aggregate() == {}


class TestMapConfigs:
    def test_order_preserved_serial_and_parallel(self):
        configs = list(range(10))
        assert map_configs(_square, configs, workers=1) == [c * c for c in configs]
        assert map_configs(_square, configs, workers=3) == [c * c for c in configs]


def _square(x: int) -> int:
    return x * x


class TestSweepMetrics:
    def test_labels_per_replication_and_stream(self):
        spec = SweepSpec("identity", replications=2, seed=1, sim_workers=4, streams=2)
        outcome = run_sweep(spec)
        registry = MetricsRegistry()
        record_sweep_metrics(outcome.report, registry)
        snap = registry.snapshot()
        util = snap["sweep.utilization"]["series"]
        assert set(util) == {'{replication="0"}', '{replication="1"}'}
        wall = snap["sweep.stream_wall_clock"]["series"]
        assert set(wall) == {
            '{replication="0",stream="0"}',
            '{replication="0",stream="1"}',
            '{replication="1",stream="0"}',
            '{replication="1",stream="1"}',
        }
        for name in (
            "sweep.makespan", "sweep.tasks", "sweep.granules",
            "sweep.mgmt_seconds", "sweep.overlaps_admitted",
        ):
            assert len(snap[name]["series"]) == 2, name

    def test_idempotent_rerecording(self):
        outcome = run_sweep(QUICK_SPEC)
        registry = MetricsRegistry()
        record_sweep_metrics(outcome.report, registry)
        once = registry.snapshot()
        record_sweep_metrics(outcome.report, registry)
        assert registry.snapshot() == once


class TestCli:
    def test_sweep_writes_canonical_report(self, tmp_path):
        out_file = tmp_path / "report.json"
        code, text = run_cli(
            "sweep", "identity", "--replications", "2", "--seed", "7",
            "--sim-workers", "4", "-o", str(out_file),
        )
        assert code == 0
        assert "mean util" in text
        on_disk = out_file.read_text(encoding="utf-8")
        expected = run_sweep(
            SweepSpec("identity", replications=2, seed=7, sim_workers=4)
        ).report.to_json()
        assert on_disk == expected

    def test_sweep_workers_flag_same_report(self, tmp_path):
        serial_file = tmp_path / "serial.json"
        parallel_file = tmp_path / "parallel.json"
        args = ("sweep", "identity", "--replications", "2", "--seed", "3",
                "--sim-workers", "4")
        assert run_cli(*args, "-o", str(serial_file))[0] == 0
        assert run_cli(*args, "--workers", "2", "-o", str(parallel_file))[0] == 0
        assert serial_file.read_bytes() == parallel_file.read_bytes()

    def test_stats_reads_sweep_report(self, tmp_path):
        out_file = tmp_path / "report.json"
        assert run_cli(
            "sweep", "identity", "--replications", "2", "--sim-workers", "4",
            "-o", str(out_file),
        )[0] == 0
        code, text = run_cli("stats", "--sweep", str(out_file))
        assert code == 0
        assert "sweep.utilization" in text
        assert "replication" in text

    def test_stats_requires_workload_or_sweep(self):
        code, text = run_cli("stats")
        assert code != 0

    def test_sweep_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            run_cli("sweep", "definitely-not-a-workload")
