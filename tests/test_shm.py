"""The zero-copy shared-memory data plane (`repro.sweep.shm`).

Lifecycle is the whole game: segments must exist exactly as long as the
owner wants them — surviving worker exits and kills, never surviving the
driver — and attachments must be read-only views that cannot destroy or
corrupt what they observe.
"""

from __future__ import annotations

import io
import os
import pickle
import subprocess
import sys

import numpy as np
import pytest

from repro.cli import main
from repro.sweep.shm import SharedMapStore

pytestmark = pytest.mark.skipif(
    not os.path.isdir("/dev/shm"), reason="needs POSIX shared memory"
)


def shm_segments() -> list[str]:
    """Our segments currently present in /dev/shm."""
    return [f for f in os.listdir("/dev/shm") if f.startswith("repro-map")]


MAPS = {
    "IMAP": np.arange(12, dtype=np.int64).reshape(3, 4),
    "FMAP": np.array([[1.5, 2.5]], dtype=np.float64),
}


class TestCreateAttach:
    def test_roundtrip_preserves_contents(self):
        with SharedMapStore.create(MAPS) as store:
            attached = SharedMapStore.attach(store.descriptors())
            try:
                for name, src in MAPS.items():
                    np.testing.assert_array_equal(attached[name], src)
                    assert attached[name].dtype == src.dtype
            finally:
                attached.close()

    def test_mapping_protocol(self):
        with SharedMapStore.create(MAPS) as store:
            assert len(store) == 2
            assert sorted(store) == ["FMAP", "IMAP"]
            assert "IMAP" in store
            assert set(store.keys()) == set(MAPS)
            with pytest.raises(KeyError):
                store["NOPE"]

    def test_views_are_read_only_on_both_sides(self):
        with SharedMapStore.create(MAPS) as store:
            with pytest.raises(ValueError):
                store["IMAP"][0, 0] = 99
            attached = SharedMapStore.attach(store.descriptors())
            try:
                with pytest.raises(ValueError):
                    attached["IMAP"][0, 0] = 99
            finally:
                attached.close()

    def test_descriptors_are_tiny_and_picklable(self):
        big = {"IMAP": np.zeros((4, 250_000), dtype=np.int64)}
        with SharedMapStore.create(big) as store:
            payload = pickle.dumps(store.descriptors())
            assert len(payload) < 1024
            assert store.nbytes() == big["IMAP"].nbytes

    def test_zero_size_array(self):
        with SharedMapStore.create({"E": np.empty((0,), dtype=np.float32)}) as store:
            attached = SharedMapStore.attach(store.descriptors())
            try:
                assert attached["E"].shape == (0,)
            finally:
                attached.close()

    def test_non_contiguous_source_is_copied_contiguously(self):
        src = np.arange(20).reshape(4, 5).T  # transposed -> not C-contiguous
        with SharedMapStore.create({"T": src}) as store:
            np.testing.assert_array_equal(store["T"], src)


class TestIdentity:
    def test_fingerprints_match_across_sides(self):
        with SharedMapStore.create(MAPS) as store:
            attached = SharedMapStore.attach(store.descriptors())
            try:
                assert store.fingerprint() == attached.fingerprint()
            finally:
                attached.close()

    def test_distinct_stores_have_distinct_fingerprints(self):
        with SharedMapStore.create(MAPS) as a, SharedMapStore.create(MAPS) as b:
            assert a.fingerprint() != b.fingerprint()

    def test_maps_fingerprint_dispatches_to_store(self):
        from repro.core.enablement import maps_fingerprint

        with SharedMapStore.create(MAPS) as store:
            assert maps_fingerprint(store) == store.fingerprint()

    def test_stores_hash_by_object_identity(self):
        with SharedMapStore.create(MAPS) as a, SharedMapStore.create(MAPS) as b:
            assert len({a, b}) == 2
            assert a != b and a == a


class TestLifecycle:
    def test_context_exit_unlinks(self):
        before = set(shm_segments())
        with SharedMapStore.create(MAPS) as store:
            created = set(shm_segments()) - before
            assert len(created) == 2
        assert set(shm_segments()) == before
        assert store.closed

    def test_unlink_is_idempotent_and_owner_only(self):
        store = SharedMapStore.create(MAPS)
        attached = SharedMapStore.attach(store.descriptors())
        with pytest.raises(RuntimeError):
            attached.unlink()
        attached.close()
        store.unlink()
        store.unlink()  # second time is a no-op

    def test_closed_store_raises_keyerror(self):
        store = SharedMapStore.create(MAPS)
        store.unlink()
        with pytest.raises(KeyError):
            store["IMAP"]

    def test_create_failure_rolls_back_created_segments(self):
        class Exploding:
            def __array__(self, dtype=None, copy=None):
                raise RuntimeError("boom")

        before = set(shm_segments())
        # copying the second "array" fails after the first segment exists;
        # create must unlink the survivors on the way out
        with pytest.raises(RuntimeError, match="boom"):
            SharedMapStore.create({"A": np.zeros(4), "B": Exploding()})
        assert set(shm_segments()) == before

    def test_atexit_guard_unlinks_leaked_owner(self):
        code = (
            "import numpy as np\n"
            "from repro.sweep.shm import SharedMapStore\n"
            "store = SharedMapStore.create({'M': np.arange(100)})\n"
            "print(store.descriptors()['M']['segment'])\n"
            # no unlink, no context manager: rely on the atexit guard
        )
        r = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env={**os.environ, "PYTHONPATH": "src"},
            check=True,
        )
        segment = r.stdout.strip()
        assert segment.startswith("repro-map")
        assert segment not in shm_segments()

    def test_standalone_attacher_exit_does_not_destroy_segment(self):
        """An unrelated process attaching must not unlink on its exit.

        This is the resource-tracker regression the `_untrack` guard
        exists for: a fresh process's tracker would otherwise unlink the
        segment out from under the owner and print a leak warning.
        """
        with SharedMapStore.create({"M": np.arange(1000)}) as store:
            code = (
                "from repro.sweep.shm import SharedMapStore\n"
                f"s = SharedMapStore.attach({store.descriptors()!r})\n"
                "print(int(s['M'].sum()))\n"
            )
            r = subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True,
                text=True,
                env={**os.environ, "PYTHONPATH": "src"},
                check=True,
            )
            assert r.stdout.strip() == str(sum(range(1000)))
            assert "leaked" not in r.stderr and "Traceback" not in r.stderr
            # owner can still read its view after the attacher died
            assert int(store["M"].sum()) == sum(range(1000))


class TestKilledWorkerLeak:
    def test_killed_grid_worker_leaks_no_segments(self, tmp_path):
        """`--kill-replication` under `--share-maps` leaves /dev/shm clean.

        The killed pool child dies with `os._exit` — no cleanup of any
        kind — while holding an attachment.  The owner's unlink (and the
        kernel's refcounting) must still remove every segment.
        """
        before = set(shm_segments())
        out = io.StringIO()
        code = main(
            [
                "sweep",
                "reverse-indirect",
                "--grid",
                "sim_workers=2,4",
                "--replications",
                "2",
                "--share-maps",
                "--workers",
                "2",
                "--param",
                "n=32",
                "--kill-replication",
                "1",
                "-o",
                str(tmp_path / "report.json"),
            ],
            out=out,
        )
        assert code == 0, out.getvalue()
        assert "restarts     : 1" in out.getvalue()
        assert set(shm_segments()) == before
