"""Tests for closed-form models, cross-checked against the simulator."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.models import (
    barrier_makespan_uniform,
    checkerboard_phase_computations,
    leftover_wave,
    management_cycle_feasible,
    min_tasks_per_processor,
    overlap_makespan_uniform,
    rundown_idle_uniform,
)
from repro.core.mapping import NullMapping, UniversalMapping
from repro.core.overlap import OverlapConfig
from repro.core.phase import PhaseProgram, PhaseSpec
from repro.executive import ExecutiveCosts, TaskSizer, run_program


class TestLeftoverWave:
    def test_paper_example_exactly(self):
        """1024² grid, 1000 processors: 524 each, 288 left, 712 idle."""
        w = leftover_wave(524_288, 1000)
        assert w.per_processor == 524
        assert w.leftover == 288
        assert w.idle_processors == 712
        assert w.waves == 525
        assert w.idle_fraction_final_wave == pytest.approx(0.712)

    def test_exact_division_no_idle(self):
        w = leftover_wave(1000, 10)
        assert w.leftover == 0 and w.idle_processors == 0
        assert w.waves == 100
        assert w.utilization_bound == 1.0

    def test_fewer_computations_than_processors(self):
        w = leftover_wave(3, 10)
        assert w.per_processor == 0 and w.leftover == 3
        assert w.idle_processors == 7 and w.waves == 1

    def test_zero_computations(self):
        w = leftover_wave(0, 5)
        assert w.waves == 0 and w.idle_processors == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            leftover_wave(-1, 10)
        with pytest.raises(ValueError):
            leftover_wave(10, 0)

    def test_checkerboard_phase_computations(self):
        assert checkerboard_phase_computations(1024) == 524_288
        with pytest.raises(ValueError):
            checkerboard_phase_computations(0)


class TestUniformMakespans:
    def test_barrier_formula(self):
        assert barrier_makespan_uniform([16, 16], 8, 1.0) == 4.0
        assert barrier_makespan_uniform([17, 16], 8, 1.0) == 5.0

    def test_overlap_bound(self):
        assert overlap_makespan_uniform([17, 15], 8, 1.0) == 4.0

    def test_overlap_never_exceeds_barrier(self):
        assert overlap_makespan_uniform([9, 9, 9], 4) <= barrier_makespan_uniform([9, 9, 9], 4)

    def test_rundown_idle_formula(self):
        assert rundown_idle_uniform(17, 8, 2.0) == 7 * 2.0
        assert rundown_idle_uniform(16, 8, 2.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            barrier_makespan_uniform([4], 0)
        with pytest.raises(ValueError):
            overlap_makespan_uniform([4], 0)


class TestFeasibility:
    def test_paper_rule(self):
        assert min_tasks_per_processor() == 2

    def test_cycle_feasibility(self):
        assert management_cycle_feasible(10, 0.1, 1.0)
        assert not management_cycle_feasible(11, 0.1, 1.0)
        with pytest.raises(ValueError):
            management_cycle_feasible(0, 0.1, 1.0)
        with pytest.raises(ValueError):
            management_cycle_feasible(1, -0.1, 1.0)


class TestCrossCheckWithSimulator:
    """The simulator with a free executive must reproduce the closed forms."""

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=1, max_value=50),
        st.integers(min_value=1, max_value=50),
        st.integers(min_value=1, max_value=10),
    )
    def test_barrier_makespan_matches_formula(self, t1, t2, p):
        # one granule per task (min_task_size=max_task_size=1)
        prog = PhaseProgram.chain(
            [PhaseSpec("a", t1), PhaseSpec("b", t2)], [NullMapping()]
        )
        r = run_program(
            prog, p,
            config=OverlapConfig.barrier(),
            costs=ExecutiveCosts.free(),
            sizer=TaskSizer(tasks_per_processor=1e9, max_task_size=1),
        )
        assert r.makespan == pytest.approx(barrier_makespan_uniform([t1, t2], p))

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=1, max_value=50),
        st.integers(min_value=1, max_value=50),
        st.integers(min_value=1, max_value=10),
    )
    def test_universal_overlap_achieves_work_bound(self, t1, t2, p):
        prog = PhaseProgram.chain(
            [PhaseSpec("a", t1), PhaseSpec("b", t2)], [UniversalMapping()]
        )
        r = run_program(
            prog, p,
            config=OverlapConfig(),
            costs=ExecutiveCosts.free(),
            sizer=TaskSizer(tasks_per_processor=1e9, max_task_size=1),
        )
        assert r.makespan == pytest.approx(overlap_makespan_uniform([t1, t2], p))

    def test_rundown_idle_matches_simulated_final_wave(self):
        from repro.metrics.rundown import rundown_report

        prog = PhaseProgram([PhaseSpec("a", 17)])
        r = run_program(
            prog, 8,
            costs=ExecutiveCosts.free(),
            sizer=TaskSizer(tasks_per_processor=1e9, max_task_size=1),
        )
        rep = rundown_report(r, 0)
        assert rep is not None
        assert rep.idle_time == pytest.approx(rundown_idle_uniform(17, 8, 1.0))


class TestExecutiveBound:
    def test_formula(self):
        from repro.analysis.models import executive_bound_makespan

        assert executive_bound_makespan(100, 0.5) == 50.0
        assert executive_bound_makespan(100, 0.5, n_executives=4) == 12.5

    def test_validation(self):
        from repro.analysis.models import executive_bound_makespan

        with pytest.raises(ValueError):
            executive_bound_makespan(-1, 0.5)
        with pytest.raises(ValueError):
            executive_bound_makespan(10, -0.5)
        with pytest.raises(ValueError):
            executive_bound_makespan(10, 0.5, n_executives=0)

    def test_saturated_simulation_respects_bound(self):
        """In the management-bound regime the simulated makespan tracks
        the serial-executive bound, and a middle-management pool divides
        it."""
        from repro.analysis.models import executive_bound_makespan
        from repro.executive import Extensions

        prog = PhaseProgram.chain(
            [PhaseSpec("a", 64), PhaseSpec("b", 64)], [NullMapping()]
        )
        costs = ExecutiveCosts(0.0, 2.0, 2.0, 0.0, 0.0, 2.0, 0.0)
        sizer = TaskSizer(tasks_per_processor=1e9, max_task_size=1)
        r1 = run_program(prog, 8, config=OverlapConfig.barrier(), costs=costs, sizer=sizer)
        bound1 = executive_bound_makespan(128, costs.assign + costs.completion)
        assert r1.makespan >= bound1
        assert r1.makespan <= bound1 * 1.25
        r4 = run_program(
            prog, 8, config=OverlapConfig.barrier(), costs=costs, sizer=sizer,
            extensions=Extensions(middle_managers=4),
        )
        assert r4.makespan < r1.makespan / 2


class TestExponentialWaveIdle:
    def test_single_processor_no_idle(self):
        from repro.analysis import exponential_wave_idle

        assert exponential_wave_idle(1, 2.0) == 0.0

    def test_grows_superlinearly(self):
        from repro.analysis import exponential_wave_idle

        per_proc_8 = exponential_wave_idle(8) / 8
        per_proc_64 = exponential_wave_idle(64) / 64
        assert per_proc_64 > per_proc_8  # ~ln p per processor

    def test_validation(self):
        from repro.analysis import exponential_wave_idle

        with pytest.raises(ValueError):
            exponential_wave_idle(0)
        with pytest.raises(ValueError):
            exponential_wave_idle(4, -1.0)

    def test_matches_monte_carlo(self):
        import numpy as np

        from repro.analysis import exponential_wave_idle

        p, mean = 12, 1.5
        rng = np.random.default_rng(0)
        samples = rng.exponential(mean, size=(20_000, p))
        idle = (samples.max(axis=1, keepdims=True) - samples).sum(axis=1)
        assert idle.mean() == pytest.approx(exponential_wave_idle(p, mean), rel=0.02)
