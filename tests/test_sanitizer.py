"""Tests for the trace-replay rundown sanitizer (``repro.lint.sanitizer``)."""

from __future__ import annotations

import json
from io import StringIO
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.core.classifier import (
    classification_of,
    classify_pair,
    enables_no_more_than,
)
from repro.executive.scheduler import run_program
from repro.lang import compile_program
from repro.lint import (
    AdmissionGuard,
    CrossCheckError,
    lint_source,
    sanitize_result,
    sanitize_saved,
    tasks_from_spans,
    tasks_from_trace,
)
from repro.obs import spans_from_trace
from repro.sim.events import format_task_label, parse_task_label
from repro.sim.persist import save_result

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

CLEAN = (
    "DEFINE PHASE load GRANULES=16 COST=1 READS [ IN(I) ] WRITES [ X(I) ]\n"
    "DEFINE PHASE smooth GRANULES=16 COST=1 READS [ X(I-1) X(I) X(I+1) ] WRITES [ Y(I) ]\n"
    "DISPATCH load ENABLE [ smooth/MAPPING=SEAM(-1,0,1) ]\n"
    "DISPATCH smooth\n"
)
RACY = (
    "DEFINE PHASE relax GRANULES=20 COST=1 READS [ F(I) ] WRITES [ U(I) ]\n"
    "DEFINE PHASE copy GRANULES=20 COST=1 READS [ U(I-1) U(I) U(I+1) ] WRITES [ V(I) ]\n"
    "DISPATCH relax ENABLE [ copy/MAPPING=UNIVERSAL ]\n"
    "DISPATCH copy\n"
)


def run_cli(*argv: str) -> tuple[int, str]:
    out = StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestTaskLabels:
    def test_label_round_trips(self):
        from repro.core.granule import GranuleSet

        granules = GranuleSet.from_ranges([(0, 4), (6, 9)])
        label = format_task_label("smooth", 3, granules)
        assert parse_task_label(label) == ("smooth", 3, ((0, 4), (6, 9)))

    def test_non_task_labels_rejected(self):
        for label in ("init:load", "complete:smooth", "assign:P3", "", "x#y:z"):
            assert parse_task_label(label) is None


class TestTaskExtraction:
    def test_trace_yields_every_executed_task(self):
        program = compile_program(CLEAN)
        result = run_program(program, 4, seed=0)
        tasks, notes = tasks_from_trace(result.trace)
        assert notes == []
        assert len(tasks) == result.tasks_executed
        assert {t.phase for t in tasks} == {"load", "smooth"}
        assert sum(t.n_granules for t in tasks) == 32
        # sorted by start time, deterministic tie-break
        assert all(a.start <= b.start for a, b in zip(tasks, tasks[1:]))

    def test_spans_agree_with_trace(self):
        program = compile_program(CLEAN)
        result = run_program(program, 4, seed=0)
        from_trace, _ = tasks_from_trace(result.trace)
        from_spans, _ = tasks_from_spans(spans_from_trace(result.trace))
        assert len(from_spans) == len(from_trace)
        assert {(t.phase, t.ranges, t.start, t.end) for t in from_spans} == {
            (t.phase, t.ranges, t.start, t.end) for t in from_trace
        }


class TestCleanRuns:
    def test_clean_program_sanitizes_ok(self):
        program = compile_program(CLEAN)
        result = run_program(program, 4, seed=0)
        report = sanitize_result(result, program)
        assert report.ok, report.render_text()
        assert report.n_tasks == result.tasks_executed
        assert report.n_pairs == 1
        assert "OK" in report.render_text()

    @pytest.mark.parametrize(
        "example,extra",
        [
            ("pipeline.pax", ()),
            ("checkerboard.pax", ()),
            ("gather_scatter.pax", ()),
            ("branch_loop.pax", ("--set", "MODE=0")),
        ],
    )
    def test_clean_examples_zero_findings(self, example, extra):
        code, text = run_cli(
            "compile", str(EXAMPLES / example), "--run", "--sanitize", *extra
        )
        assert code == 0, text
        assert "sanitizer: OK" in text

    def test_sanitize_flag_does_not_change_saved_bytes(self, tmp_path):
        program = compile_program(CLEAN)
        result = run_program(program, 4, seed=0)
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        save_result(result, a)
        sanitize_result(result, program)  # must be read-only on the result
        save_result(result, b)
        assert a.read_bytes() == b.read_bytes()


class TestInjectedRace:
    def test_sanitizer_catches_overpermissive_mapping(self):
        assert {d.rule_id for d in lint_source(RACY)} == {"RDN001"}
        program = compile_program(RACY)
        result = run_program(program, 8, seed=0)
        report = sanitize_result(result, program)
        assert not report.ok
        kinds = {f.kind for f in report.findings}
        assert kinds & {"race", "latent-race"}
        assert all(f.pred == "relax" and f.succ == "copy" for f in report.findings)

    def test_admission_guard_agrees(self):
        program = compile_program(RACY)
        with pytest.raises(CrossCheckError):
            run_program(program, 8, seed=0, admission_guard=AdmissionGuard(program))


def _fake_saved_run(succ_start: float) -> dict:
    """A two-phase IDENTITY run where the successor starts at ``succ_start``.

    The predecessor's single task covers granules [0,4) over [0, 10).
    """
    def rec(time, kind, subject, label):
        return {"time": time, "kind": kind, "subject": subject,
                "detail": {"label": label}}

    p = "p#0:GranuleSet([0,4))"
    q = "q#1:GranuleSet([0,4))"
    return {
        "summary": {
            "phases": [
                {"stream": 0, "index": 0, "name": "p"},
                {"stream": 0, "index": 1, "name": "q"},
            ]
        },
        "trace": {
            "records": [
                rec(0.0, "task_start", "P0", p),
                rec(10.0, "task_end", "P0", p),
                rec(succ_start, "task_start", "P1", q),
                rec(succ_start + 5.0, "task_end", "P1", q),
            ],
            "intervals": [],
        },
    }


ORDERED = (
    "DEFINE PHASE p GRANULES=4 READS [ A(I) ] WRITES [ B(I) ]\n"
    "DEFINE PHASE q GRANULES=4 READS [ B(I) ] WRITES [ C(I) ]\n"
    "DISPATCH p ENABLE [ q/MAPPING=IDENTITY ]\n"
    "DISPATCH q\n"
)


class TestSavedRuns:
    def test_order_violation_detected(self):
        # q starts at t=5 < the declared-required completion at t=10:
        # the executive broke its own IDENTITY interlock
        program = compile_program(ORDERED)
        report = sanitize_saved(_fake_saved_run(succ_start=5.0), program)
        assert not report.ok
        assert [f.kind for f in report.findings] == ["order-violation"]
        assert report.findings[0].severity == "error"
        assert "incomplete when a successor task started" in report.findings[0].message

    def test_properly_ordered_saved_run_is_ok(self):
        program = compile_program(ORDERED)
        report = sanitize_saved(_fake_saved_run(succ_start=10.0), program)
        assert report.ok, report.render_text()

    def test_schedule_mismatch_detected(self):
        other = compile_program(
            "DEFINE PHASE x GRANULES=4\nDEFINE PHASE y GRANULES=4\n"
            "DISPATCH x\nDISPATCH y\n"
        )
        report = sanitize_saved(_fake_saved_run(succ_start=10.0), other)
        assert [f.kind for f in report.findings] == ["schedule-mismatch"]

    def test_missing_trace_raises(self):
        program = compile_program(ORDERED)
        with pytest.raises(ValueError, match="no trace"):
            sanitize_saved({"summary": {"phases": []}}, program)

    def test_saved_round_trip_matches_live(self, tmp_path):
        program = compile_program(RACY)
        result = run_program(program, 8, seed=0)
        path = tmp_path / "run.json"
        save_result(result, path)
        live = sanitize_result(result, program)
        saved = sanitize_saved(json.loads(path.read_text()), program)
        assert [f.to_dict() for f in saved.findings] == [
            f.to_dict() for f in live.findings
        ]

    def test_check_run_cli(self, tmp_path):
        src = tmp_path / "racy.pax"
        src.write_text(RACY)
        run_json = tmp_path / "run.json"
        code, _ = run_cli("compile", str(src), "--run", "--save", str(run_json))
        assert code == 0
        code, text = run_cli("lint", "--check-run", str(run_json), str(src))
        assert code == 1
        assert "RDN001" in text  # static verdict printed first
        assert "sanitizer:" in text and "finding(s)" in text

    def test_check_run_requires_single_source(self, tmp_path):
        code, _ = run_cli("lint", "--check-run", "run.json", "a.pax", "b.pax")
        assert code == 2


_DECLARED = ["UNIVERSAL", "IDENTITY", "NULL", "SEAM(0)", "SEAM(-1,0,1)", "SEAM(1)"]


def _two_phase_source(n: int, stencil: frozenset[int], shared: bool, decl: str) -> str:
    array = "U" if shared else "R"
    reads = " ".join(
        f"{array}(I{o:+d})" if o else f"{array}(I)" for o in sorted(stencil)
    )
    return (
        f"DEFINE PHASE p GRANULES={n} COST=1.0 READS [ F(I) ] WRITES [ U(I) ]\n"
        f"DEFINE PHASE q GRANULES={n} COST=1.0 READS [ {reads} ] WRITES [ V(I) ]\n"
        f"DISPATCH p ENABLE [ q/MAPPING={decl} ]\n"
        f"DISPATCH q\n"
    )


class TestDifferential:
    """Sanitizer verdicts agree with ``classify_pair`` on random programs."""

    @settings(max_examples=40, deadline=None)
    @given(
        n=st.integers(min_value=4, max_value=20),
        stencil=st.frozensets(
            st.integers(min_value=-2, max_value=2), min_size=1, max_size=3
        ),
        shared=st.booleans(),
        decl=st.sampled_from(_DECLARED),
        workers=st.sampled_from([2, 4, 8]),
    )
    def test_safe_declarations_sanitize_clean(self, n, stencil, shared, decl, workers):
        src = _two_phase_source(n, stencil, shared, decl)
        program = compile_program(src)
        declared = classification_of(program.mapping_between("p", "q"), "p", "q")
        inferred = classify_pair(program.phases["p"], program.phases["q"])
        safe = enables_no_more_than(declared, inferred)

        result = run_program(program, workers, seed=0)
        report = sanitize_result(result, program)

        if safe:
            # a sound declaration can never produce a sanitizer finding
            assert report.ok, f"{src}\n{report.render_text()}"
        else:
            # the static analyzer must already flag what the sanitizer could
            assert "RDN001" in {d.rule_id for d in lint_source(src)}
        # ...and any dynamic race implies the static race verdict
        if any(f.kind in ("race", "latent-race") for f in report.findings):
            assert not safe
