"""Tests for pool-overhead profiling and live progress streaming.

Two load-bearing properties:

* **Byte-identity** — a sweep/grid's canonical JSON report is identical
  with profiling enabled or disabled; the profiler observes through a
  result envelope the driver unwraps before the record callback runs.
* **Exactly-once counters** — worker-side counter deltas flush once per
  task and merge associatively into the parent registry.
"""

from __future__ import annotations

import io

import pytest

from repro.obs import (
    EventBus,
    MetricsRegistry,
    PoolProfiler,
    PoolTaskCompleted,
    ProfileReport,
    ProgressReporter,
    flush_counters,
    format_progress,
    merge_counters,
    worker_registry,
)
from repro.sweep import GridSpec, SweepSpec, parse_axis, run_grid, run_sweep

SPEC = SweepSpec("identity", replications=3, seed=7, sim_workers=4)


class TestSweepByteIdentity:
    def test_profiled_pool_sweep_matches_plain_inline(self):
        plain = run_sweep(SPEC, workers=1)
        profiler = PoolProfiler()
        profiled = run_sweep(SPEC, workers=2, profiler=profiler, batch_size=1)
        assert profiled.report.to_json() == plain.report.to_json()
        profile = profiler.profile("replication", profiled.pool_workers)
        assert len(profile.tasks) == SPEC.replications
        assert 0.0 < profile.coverage <= 1.0
        assert 1 <= profile.worker_processes <= 2

    def test_profiled_grid_matches_plain_inline(self):
        grid = GridSpec(
            base=SweepSpec("identity", replications=2, seed=5, sim_workers=4),
            axes=(parse_axis("sim_workers=4,8"),),
        )
        plain = run_grid(grid, workers=1)
        profiler = PoolProfiler()
        profiled = run_grid(grid, workers=2, profiler=profiler)
        assert profiled.report.to_json() == plain.report.to_json()
        assert profiler.profile().tasks, "grid chunks should be profiled"

    def test_inline_profiled_sweep_matches_too(self):
        plain = run_sweep(SPEC, workers=1)
        profiler = PoolProfiler()
        profiled = run_sweep(SPEC, workers=1, profiler=profiler)
        assert profiled.report.to_json() == plain.report.to_json()
        profile = profiler.profile()
        assert len(profile.tasks) == SPEC.replications
        # inline tasks run in this very process: no warmup to attribute
        assert profile.totals()["warmup"] == 0.0


class TestPoolProfile:
    def test_attribution_covers_categories_and_renders(self):
        profiler = PoolProfiler()
        outcome = run_sweep(SPEC, workers=2, profiler=profiler, batch_size=1)
        profile = profiler.profile("replication", outcome.pool_workers)
        totals = profile.totals()
        assert set(totals) == {"compute", "queue_wait", "serialization", "warmup"}
        assert totals["compute"] > 0.0
        assert sum(totals.values()) <= profile.wall_total + 1e-6
        text = profile.render_text()
        assert "attribution coverage" in text and "overheads" in text
        doc = ProfileReport(pool=profile, meta={"n": 1}).to_dict()
        assert doc["kind"] == "profile-report"
        assert doc["pool"]["task_count"] == SPEC.replications

    def test_overheads_ranked_largest_first(self):
        profiler = PoolProfiler()
        run_sweep(SPEC, workers=2, profiler=profiler)
        ranked = profiler.profile().overheads()
        assert [c for c, _, _ in ranked] != []
        seconds = [s for _, s, _ in ranked]
        assert seconds == sorted(seconds, reverse=True)
        assert "compute" not in {c for c, _, _ in ranked}

    def test_unprofiled_result_passes_through(self):
        profiler = PoolProfiler()
        assert profiler.record_result(0, {"plain": "result"}) == {"plain": "result"}
        assert profiler.record_result(1, 42) == 42
        assert profiler.profile().tasks == []


class TestWorkerCounters:
    def test_flush_drains_exactly_once(self):
        registry = MetricsRegistry()
        registry.counter("faults.injected_total", "test").inc(3, kind="transient")
        first = flush_counters(registry)
        assert first == {
            "faults.injected_total": [[[["kind", "transient"]], 3.0]]
        }
        assert flush_counters(registry) == {}  # second flush: nothing left

    def test_merge_is_associative(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("x").inc(2, p="0")
        b.counter("x").inc(5, p="0")
        b.counter("y").inc(1)
        fa, fb = flush_counters(a), flush_counters(b)
        left, right = MetricsRegistry(), MetricsRegistry()
        merge_counters(left, fa)
        merge_counters(left, fb)
        merge_counters(right, fb)
        merge_counters(right, fa)
        assert left.snapshot() == right.snapshot()
        assert left.counter("x").series() == {(("p", "0"),): 7.0}

    def test_gauges_stay_process_local(self):
        registry = MetricsRegistry()
        registry.gauge("queue.depth").set(4)
        registry.counter("done").inc()
        flushed = flush_counters(registry)
        assert set(flushed) == {"done"}

    def test_worker_registry_is_process_global(self):
        assert worker_registry() is worker_registry()

    def test_pool_sweep_merges_worker_counters_into_parent(self):
        profiler = PoolProfiler()
        run_sweep(SPEC, workers=2, profiler=profiler)
        snapshot = profiler.metrics.snapshot()
        # instrumented workers count each finished run into the registry
        assert "worker.runs_total" in snapshot
        runs = snapshot["worker.runs_total"]["series"]
        assert sum(runs.values()) == SPEC.replications  # merged exactly once
        assert snapshot["worker.granules_total"]["series"][""] > 0


class TestProgress:
    def test_format_progress_line(self):
        line = format_progress(PoolTaskCompleted(2.0, "replication", 6, 16))
        assert line.startswith("[sweep] 6/16 replications (37.5%)")
        assert "3.00/s" in line and "ETA" in line

    def test_final_line_reports_completion(self):
        line = format_progress(PoolTaskCompleted(4.0, "cell", 8, 8))
        assert "done in 4.0s" in line and "ETA" not in line

    def test_rate_limit_by_event_time_and_final_always_emits(self):
        stream = io.StringIO()
        reporter = ProgressReporter(stream, min_interval=1.0)
        bus = EventBus()
        reporter.subscribe(bus)
        for i, t in enumerate([0.1, 0.2, 0.3, 1.5, 1.6], start=1):
            bus.publish(PoolTaskCompleted(t, "replication", i, 5))
        reporter.close()
        lines = stream.getvalue().splitlines()
        # 0.1 emits, 0.2/0.3 suppressed, 1.5 emits, 1.6 is final so it emits
        assert len(lines) == 3 == reporter.lines_emitted
        assert lines[-1].startswith("[sweep] 5/5")

    def test_close_detaches_from_bus(self):
        stream = io.StringIO()
        reporter = ProgressReporter(stream, min_interval=0.0)
        bus = EventBus()
        reporter.subscribe(bus)
        reporter.close()
        bus.publish(PoolTaskCompleted(1.0, "replication", 1, 1))
        assert stream.getvalue() == ""

    @pytest.mark.parametrize("workers", [1, 2])
    def test_run_sweep_publishes_completion_events(self, workers):
        bus = EventBus()
        got: list[PoolTaskCompleted] = []
        bus.subscribe(PoolTaskCompleted, got.append)
        run_sweep(SPEC, workers=workers, bus=bus)
        assert [e.done for e in got] == [1, 2, 3]
        assert all(e.total == 3 and e.what == "replication" for e in got)
        assert [e.time for e in got] == sorted(e.time for e in got)

    def test_run_grid_publishes_cell_events(self):
        grid = GridSpec(
            base=SweepSpec("identity", replications=2, seed=5, sim_workers=4),
            axes=(parse_axis("sim_workers=4,8"),),
        )
        bus = EventBus()
        got: list[PoolTaskCompleted] = []
        bus.subscribe(PoolTaskCompleted, got.append)
        run_grid(grid, workers=1, bus=bus)
        assert got and got[-1].done == got[-1].total
        assert all(e.what == "cell" for e in got)
