"""Tests for the automatic mapping classifier and the census."""

from __future__ import annotations

import pytest

from repro.core.access import AccessPattern, AffineIndex, AllIndex, ArrayRef, ConstIndex, MappedIndex
from repro.core.classifier import MappingCensus, build_mapping, classify_pair, classify_program
from repro.core.mapping import (
    ForwardIndirectMapping,
    IdentityMapping,
    MappingKind,
    NullMapping,
    ReverseIndirectMapping,
    SeamMapping,
    UniversalMapping,
)
from repro.core.phase import PhaseProgram, PhaseSpec
from repro.workloads.fragments import (
    forward_indirect_fragment,
    identity_fragment,
    reverse_indirect_fragment,
    universal_fragment,
)


def phase(name: str, reads=(), writes=(), n: int = 8, lines: int = 0) -> PhaseSpec:
    return PhaseSpec(
        name, n, access=AccessPattern(reads=tuple(reads), writes=tuple(writes)), lines=lines
    )


class TestClassifyPair:
    def test_no_shared_information_is_universal(self):
        a = phase("a", reads=[ArrayRef("A")], writes=[ArrayRef("B")])
        b = phase("b", reads=[ArrayRef("C")], writes=[ArrayRef("D")])
        assert classify_pair(a, b).kind is MappingKind.UNIVERSAL

    def test_identity_dependence(self):
        a = phase("a", reads=[ArrayRef("A")], writes=[ArrayRef("B")])
        b = phase("b", reads=[ArrayRef("B")], writes=[ArrayRef("C")])
        assert classify_pair(a, b).kind is MappingKind.IDENTITY

    def test_serial_action_forces_null(self):
        a = phase("a", writes=[ArrayRef("B")])
        b = phase("b", reads=[ArrayRef("B")])
        assert classify_pair(a, b, serial_between=True).kind is MappingKind.NULL

    def test_missing_footprint_is_null(self):
        a = PhaseSpec("a", 4)
        b = phase("b")
        assert classify_pair(a, b).kind is MappingKind.NULL
        assert classify_pair(b, a).kind is MappingKind.NULL

    def test_reduction_read_is_null(self):
        a = phase("a", writes=[ArrayRef("B")])
        b = phase("b", reads=[ArrayRef("B", AllIndex())], writes=[ArrayRef("s")])
        assert classify_pair(a, b).kind is MappingKind.NULL

    def test_mapped_read_is_reverse_indirect(self):
        a = phase("a", writes=[ArrayRef("A")])
        b = phase("b", reads=[ArrayRef("A", MappedIndex("IMAP", fan_in=3))], writes=[ArrayRef("B")])
        c = classify_pair(a, b)
        assert c.kind is MappingKind.REVERSE_INDIRECT
        assert c.map_name == "IMAP"

    def test_mapped_write_is_forward_indirect(self):
        a = phase("a", writes=[ArrayRef("B", MappedIndex("FMAP"))])
        b = phase("b", reads=[ArrayRef("B")], writes=[ArrayRef("C")])
        c = classify_pair(a, b)
        assert c.kind is MappingKind.FORWARD_INDIRECT
        assert c.map_name == "FMAP"

    def test_stencil_is_seam_with_offsets(self):
        a = phase("a", writes=[ArrayRef("u")])
        b = phase(
            "b",
            reads=[ArrayRef("u", AffineIndex(1, -1)), ArrayRef("u", AffineIndex(1, 1))],
            writes=[ArrayRef("v")],
        )
        c = classify_pair(a, b)
        assert c.kind is MappingKind.SEAM
        assert set(c.offsets) >= {-1, 1}

    def test_anti_dependence_counts(self):
        # successor overwrites what the predecessor reads
        a = phase("a", reads=[ArrayRef("A")], writes=[ArrayRef("B")])
        b = phase("b", reads=[ArrayRef("C")], writes=[ArrayRef("A")])
        assert classify_pair(a, b).kind is MappingKind.IDENTITY

    def test_shared_scalar_is_null(self):
        a = phase("a", writes=[ArrayRef("flag", ConstIndex(0))])
        b = phase("b", reads=[ArrayRef("flag", ConstIndex(0))], writes=[ArrayRef("B")])
        assert classify_pair(a, b).kind is MappingKind.NULL

    def test_scalar_accumulator_written_by_both_phases_is_null(self):
        # Regression: both phases write fixed elements of the same array
        # (a scalar accumulator region).  Even at *distinct* slots the
        # update order matters — this must not fall through to UNIVERSAL.
        a = phase("a", writes=[ArrayRef("acc", ConstIndex(0))])
        b = phase("b", writes=[ArrayRef("acc", ConstIndex(1))])
        verdict = classify_pair(a, b)
        assert verdict.kind is MappingKind.NULL
        assert "scalar" in verdict.reason

    def test_distinct_const_read_elements_stay_universal(self):
        # A fixed-element *read* against a different fixed-element write
        # still never conflicts.
        a = phase("a", writes=[ArrayRef("tab", ConstIndex(0))])
        b = phase("b", reads=[ArrayRef("tab", ConstIndex(1))], writes=[ArrayRef("B")])
        assert classify_pair(a, b).kind is MappingKind.UNIVERSAL

    def test_non_unit_stride_is_conservative_null(self):
        a = phase("a", writes=[ArrayRef("A", AffineIndex(2, 0))])
        b = phase("b", reads=[ArrayRef("A", AffineIndex(1, 0))], writes=[ArrayRef("B")])
        assert classify_pair(a, b).kind is MappingKind.NULL

    def test_most_restrictive_wins(self):
        # identity through B but reduction through S -> NULL dominates
        a = phase("a", writes=[ArrayRef("B"), ArrayRef("S")])
        b = phase("b", reads=[ArrayRef("B"), ArrayRef("S", AllIndex())], writes=[ArrayRef("C")])
        assert classify_pair(a, b).kind is MappingKind.NULL

    def test_identity_plus_stencil_becomes_seam(self):
        a = phase("a", writes=[ArrayRef("u"), ArrayRef("w")])
        b = phase(
            "b",
            reads=[ArrayRef("u", AffineIndex(1, 1)), ArrayRef("w")],
            writes=[ArrayRef("v")],
        )
        c = classify_pair(a, b)
        assert c.kind is MappingKind.SEAM
        assert 0 in c.offsets and 1 in c.offsets


class TestBuildMapping:
    def test_each_kind_materializes(self):
        cases = [
            (MappingKind.UNIVERSAL, UniversalMapping),
            (MappingKind.IDENTITY, IdentityMapping),
            (MappingKind.NULL, NullMapping),
            (MappingKind.REVERSE_INDIRECT, ReverseIndirectMapping),
            (MappingKind.FORWARD_INDIRECT, ForwardIndirectMapping),
            (MappingKind.SEAM, SeamMapping),
        ]
        for kind, cls in cases:
            from repro.core.classifier import PairClassification

            c = PairClassification("a", "b", kind, offsets=(-1, 0, 1), map_name="M")
            assert isinstance(build_mapping(c), cls)


class TestFragmentsClassify:
    """The paper's four fragments must classify to the paper's verdicts."""

    def test_universal_fragment(self):
        f = universal_fragment(16)
        pairs = f.program.adjacent_pairs()
        (pred, succ, serial) = pairs[0]
        c = classify_pair(f.program.phases[pred], f.program.phases[succ], serial)
        assert c.kind is MappingKind.UNIVERSAL

    def test_identity_fragment(self):
        f = identity_fragment(16)
        (pred, succ, serial) = f.program.adjacent_pairs()[0]
        c = classify_pair(f.program.phases[pred], f.program.phases[succ], serial)
        assert c.kind is MappingKind.IDENTITY

    def test_reverse_fragment(self):
        f = reverse_indirect_fragment(16, fan_in=3)
        (pred, succ, serial) = f.program.adjacent_pairs()[0]
        c = classify_pair(f.program.phases[pred], f.program.phases[succ], serial)
        assert c.kind is MappingKind.REVERSE_INDIRECT

    def test_forward_fragment(self):
        f = forward_indirect_fragment(16, 12)
        (pred, succ, serial) = f.program.adjacent_pairs()[0]
        c = classify_pair(f.program.phases[pred], f.program.phases[succ], serial)
        assert c.kind is MappingKind.FORWARD_INDIRECT


class TestCensus:
    def test_fractions(self):
        census = MappingCensus()
        from repro.core.classifier import PairClassification

        census.add(PairClassification("a", "b", MappingKind.IDENTITY), lines=60)
        census.add(PairClassification("b", "c", MappingKind.NULL), lines=40)
        assert census.n_pairs == 2
        assert census.phase_fraction(MappingKind.IDENTITY) == 0.5
        assert census.line_fraction(MappingKind.IDENTITY) == 0.6
        assert census.easily_overlapped_phase_fraction() == 0.5
        assert census.amenable_phase_fraction() == 0.5

    def test_empty_census(self):
        census = MappingCensus()
        assert census.phase_fraction(MappingKind.IDENTITY) == 0.0
        assert census.line_fraction(MappingKind.IDENTITY) == 0.0

    def test_classify_program_wrap(self):
        a = phase("a", reads=[ArrayRef("X")], writes=[ArrayRef("Y")], lines=10)
        b = phase("b", reads=[ArrayRef("Y")], writes=[ArrayRef("X")], lines=20)
        prog = PhaseProgram([a, b], ["a", "b"])
        census = classify_program(prog, wrap=True)
        assert census.n_pairs == 2
        # a->b identity through Y; b->a identity through X (wrap)
        assert census.phase_counts[MappingKind.IDENTITY] == 2

    def test_rows_ordering(self):
        census = MappingCensus()
        from repro.core.classifier import PairClassification

        census.add(PairClassification("a", "b", MappingKind.NULL), lines=1)
        census.add(PairClassification("b", "c", MappingKind.UNIVERSAL), lines=1)
        rows = census.rows()
        assert rows[0][0] == "universal"  # least restrictive first
        assert rows[-1][0] == "null"
