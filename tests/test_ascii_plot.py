"""Tests for ASCII charts."""

from __future__ import annotations

import pytest

from repro.metrics.ascii_plot import bar_chart, line_plot


class TestBarChart:
    def test_basic_shape(self):
        txt = bar_chart(["a", "bb"], [1.0, 2.0], width=10, title="T")
        lines = txt.splitlines()
        assert lines[0] == "T"
        assert lines[1].strip().startswith("a")
        # the larger value has the longer bar
        assert lines[2].count("#") > lines[1].count("#")

    def test_values_appended(self):
        txt = bar_chart(["x"], [3.5], width=10)
        assert "3.5" in txt

    def test_baseline_marker(self):
        txt = bar_chart(["x", "y"], [0.5, 2.0], width=20, baseline=1.0)
        for line in txt.splitlines():
            assert "|" in line

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])

    def test_width_validation(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0], width=1)

    def test_empty(self):
        assert bar_chart([], [], title="t") == "t"

    def test_negative_values_clamped(self):
        txt = bar_chart(["neg"], [-5.0], width=10)
        assert "#" not in txt

    def test_unit_suffix(self):
        assert "ms" in bar_chart(["a"], [2.0], unit="ms")


class TestLinePlot:
    def test_basic_grid(self):
        txt = line_plot([0, 1, 2], {"alpha": [0, 1, 2]}, width=10, height=5)
        lines = txt.splitlines()
        assert any("a" in l for l in lines)
        assert "a=alpha" in lines[-1]

    def test_two_series_distinct_chars(self):
        txt = line_plot([0, 1], {"up": [0, 1], "down": [1, 0]}, width=10, height=5)
        assert "u" in txt and "d" in txt

    def test_collision_marker(self):
        txt = line_plot([0], {"aa": [1.0], "bb": [1.0]}, width=10, height=5)
        assert "*" in txt

    def test_constant_series(self):
        txt = line_plot([0, 1], {"c": [2.0, 2.0]}, width=10, height=5)
        assert "c" in txt

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            line_plot([0, 1], {"s": [1.0]})

    def test_size_validation(self):
        with pytest.raises(ValueError):
            line_plot([0], {"s": [1.0]}, width=2)

    def test_axis_labels(self):
        txt = line_plot([0, 10], {"s": [5.0, 15.0]}, width=20, height=5)
        assert "15" in txt and "5" in txt and "10" in txt
