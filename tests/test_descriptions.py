"""Tests for computation descriptions: split, merge, conflict release."""

from __future__ import annotations

import pytest

from repro.core.granule import GranuleSet
from repro.executive.descriptions import ComputationDescription, DescriptionState


def desc(start=0, stop=16, run=0, name="p"):
    return ComputationDescription(run, name, GranuleSet.from_ranges([(start, stop)]))


class TestLifecycle:
    def test_initial_state(self):
        d = desc()
        assert d.state is DescriptionState.WAITING
        assert len(d) == 16

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ComputationDescription(0, "p", GranuleSet.empty())

    def test_unique_ids(self):
        assert desc().id != desc().id


class TestSplit:
    def test_split_takes_head(self):
        d = desc(0, 16)
        child = d.split(5)
        assert list(child.granules) == list(range(5))
        assert list(d.granules) == list(range(5, 16))
        assert d.splits == 1

    def test_split_whole_rejected(self):
        d = desc(0, 4)
        with pytest.raises(ValueError):
            d.split(4)
        with pytest.raises(ValueError):
            d.split(0)

    def test_split_preserves_elevation(self):
        d = ComputationDescription(0, "p", GranuleSet.from_ranges([(0, 8)]), elevated=True)
        assert d.split(3).elevated


class TestMerge:
    def test_merge_recombines(self):
        d = desc(0, 16)
        child = d.split(5)
        d.merge(child)
        assert d.granules == GranuleSet.from_ranges([(0, 16)])
        assert d.merges == 1

    def test_merge_cross_run_rejected(self):
        a = desc(run=0)
        b = desc(run=1)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_merge_with_pending_conflicts_rejected(self):
        a = desc(0, 8)
        b = desc(8, 16)
        b.queue_conflicting(desc(16, 20))
        with pytest.raises(ValueError):
            a.merge(b)


class TestConflictQueueing:
    def test_queue_and_release(self):
        current = desc(0, 8)
        succ1 = desc(0, 4, run=1, name="q")
        succ2 = desc(4, 8, run=1, name="q")
        current.queue_conflicting(succ1)
        current.queue_conflicting(succ2)
        assert succ1.state is DescriptionState.CONFLICTED
        released = list(current.release_conflicts())
        assert released == [succ1, succ2]
        assert len(current.conflict_queue) == 0

    def test_release_empty(self):
        assert list(desc().release_conflicts()) == []
