"""Tests for trace/result persistence."""

from __future__ import annotations

import json

import pytest

from repro.core.mapping import IdentityMapping
from repro.core.overlap import OverlapConfig
from repro.executive import run_program
from repro.metrics import mean_utilization, render_gantt
from repro.sim.events import EventKind
from repro.sim.persist import (
    load_trace,
    result_summary,
    save_result,
    save_trace,
    trace_from_dict,
    trace_to_dict,
)
from tests.conftest import two_phase_program


@pytest.fixture
def result():
    return run_program(two_phase_program(IdentityMapping(), n=32), 4, config=OverlapConfig())


class TestTraceRoundtrip:
    def test_intervals_survive(self, result):
        rebuilt = trace_from_dict(trace_to_dict(result.trace))
        assert rebuilt.resources() == result.trace.resources()
        for r in result.trace.resources():
            assert rebuilt.busy_time(r) == pytest.approx(result.trace.busy_time(r))

    def test_records_survive(self, result):
        rebuilt = trace_from_dict(trace_to_dict(result.trace))
        assert len(rebuilt.records) == len(result.trace.records)
        starts = rebuilt.records_of(EventKind.PHASE_START)
        assert [r.subject for r in starts] == [
            r.subject for r in result.trace.records_of(EventKind.PHASE_START)
        ]

    def test_metrics_identical_after_roundtrip(self, result):
        rebuilt = trace_from_dict(trace_to_dict(result.trace))
        assert mean_utilization(rebuilt, 4) == pytest.approx(mean_utilization(result.trace, 4))
        assert render_gantt(rebuilt, width=40) == render_gantt(result.trace, width=40)

    def test_file_roundtrip(self, result, tmp_path):
        path = tmp_path / "trace.json"
        save_trace(result.trace, path)
        rebuilt = load_trace(path)
        assert rebuilt.makespan() == pytest.approx(result.trace.makespan())

    def test_serialized_is_plain_json(self, result, tmp_path):
        path = tmp_path / "trace.json"
        save_trace(result.trace, path)
        data = json.loads(path.read_text())
        assert set(data) == {"records", "intervals"}


class TestResultSummary:
    def test_summary_fields(self, result):
        s = result_summary(result)
        assert s["granules_executed"] == 64
        assert s["makespan"] == pytest.approx(result.makespan)
        assert len(s["phases"]) == 2
        assert s["phases"][1]["overlapped"] is True
        assert s["streams"][0]["wall_clock"] >= 0

    def test_save_result_with_and_without_trace(self, result, tmp_path):
        p1 = tmp_path / "with.json"
        p2 = tmp_path / "without.json"
        save_result(result, p1, include_trace=True)
        save_result(result, p2, include_trace=False)
        d1 = json.loads(p1.read_text())
        d2 = json.loads(p2.read_text())
        assert "trace" in d1 and "trace" not in d2
        assert d1["summary"] == d2["summary"]
