"""The parameter-grid sweep engine (`repro.sweep.grid`).

The acceptance property mirrors the replication fan's: a grid report is
a pure function of ``(grid spec, shared maps)`` — byte-identical across
pool sizes, chunkings, worker kills, and manifest resumes.
"""

from __future__ import annotations

import io
import json

import numpy as np
import pytest

from repro.cli import main
from repro.sweep import (
    GridAxis,
    GridSpec,
    SweepSpec,
    grid_cell_seed,
    grid_point_seed,
    materialize_maps,
    parse_axis,
    run_grid,
    run_grid_cell,
)

BASE = SweepSpec(
    "reverse-indirect", replications=2, seed=7, sim_workers=4, params={"n": 48}
)
GRID = GridSpec(
    base=BASE,
    axes=(GridAxis("sim_workers", (2, 4)), GridAxis("overlap", (True, False))),
)


def run_cli(*argv: str) -> tuple[int, str]:
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestSpec:
    def test_cartesian_points_last_axis_fastest(self):
        points = GRID.points()
        assert points == [
            {"sim_workers": 2, "overlap": True},
            {"sim_workers": 2, "overlap": False},
            {"sim_workers": 4, "overlap": True},
            {"sim_workers": 4, "overlap": False},
        ]
        assert GRID.n_points == 4
        assert GRID.n_cells == 8

    def test_explicit_point_list(self):
        grid = GridSpec.from_points(BASE, [{"n": 16}, {"n": 32, "overlap": False}])
        assert grid.points() == [{"n": 16}, {"n": 32, "overlap": False}]
        assert grid.n_points == 2

    def test_spec_roundtrips_through_dict(self):
        for grid in (GRID, GridSpec.from_points(BASE, [{"n": 16}])):
            again = GridSpec.from_dict(grid.to_dict())
            assert again.points() == grid.points()
            assert again.base == grid.base

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one axis"):
            GridSpec(base=BASE)
        with pytest.raises(ValueError, match="duplicate axis"):
            GridSpec(base=BASE, axes=(GridAxis("n", (1,)), GridAxis("n", (2,))))
        with pytest.raises(ValueError, match="at least one value"):
            GridAxis("n", ())
        with pytest.raises(ValueError, match="duplicate values"):
            GridAxis("n", (1, 1))
        with pytest.raises(ValueError, match="cannot be a grid axis"):
            GridAxis("seed", (1, 2))
        with pytest.raises(ValueError, match="cannot vary per point"):
            GridSpec.from_points(BASE, [{"replications": 3}])

    def test_parse_axis(self):
        axis = parse_axis("target_fraction=0.25,1.0")
        assert axis == GridAxis("target_fraction", (0.25, 1.0))
        assert parse_axis("split=demand,presplit").values == ("demand", "presplit")
        assert parse_axis("overlap=true,false").values == (True, False)
        with pytest.raises(ValueError, match="AXIS=v1,v2"):
            parse_axis("justaname")
        with pytest.raises(ValueError, match="not a valid parameter name"):
            parse_axis("bad axis==x")


class TestSeeds:
    def test_cell_seed_is_pure_function_of_point_not_position(self):
        point = {"sim_workers": 2, "overlap": True}
        assert grid_cell_seed(7, point, 0) == grid_cell_seed(7, dict(point), 0)
        assert grid_cell_seed(7, point, 0) != grid_cell_seed(7, point, 1)
        assert grid_point_seed(7, point) != grid_point_seed(8, point)
        assert grid_point_seed(7, point) != grid_point_seed(7, {"sim_workers": 4})

    def test_adding_an_axis_value_preserves_existing_cells(self):
        small = run_grid(GRID, workers=1).report
        wider = GridSpec(
            base=BASE,
            axes=(GridAxis("sim_workers", (2, 4, 8)), GridAxis("overlap", (True, False))),
        )
        big = run_grid(wider, workers=1).report
        for cell in small.cells:
            match = [
                c
                for c in big.cells
                if c["point"] == cell["point"] and c["replication"] == cell["replication"]
            ]
            assert len(match) == 1 and match[0] == {**cell, "cell": match[0]["cell"]}


class TestDeterminism:
    def test_reports_byte_identical_across_pool_sizes(self):
        reference = run_grid(GRID, workers=1).report.to_json()
        for workers in (2, 4):
            assert run_grid(GRID, workers=workers).report.to_json() == reference

    def test_shared_maps_byte_identical_inline_vs_pool_vs_no_shm(self):
        maps = materialize_maps(GRID)
        reference = run_grid(GRID, workers=1, shared_maps=maps).report.to_json()
        assert run_grid(GRID, workers=2, shared_maps=maps).report.to_json() == reference
        assert (
            run_grid(GRID, workers=2, shared_maps=maps, use_shm=False).report.to_json()
            == reference
        )

    def test_chunk_size_does_not_change_report(self):
        reference = run_grid(GRID, workers=2).report.to_json()
        for chunk_size in (1, 3, 100):
            assert (
                run_grid(GRID, workers=2, chunk_size=chunk_size).report.to_json()
                == reference
            )

    def test_killed_worker_byte_identical(self):
        reference = run_grid(GRID, workers=1).report.to_json()
        outcome = run_grid(GRID, workers=2, kill_cells=[1])
        assert outcome.report.to_json() == reference
        assert outcome.worker_restarts == 1

    def test_config_axes_change_results(self):
        grid = GridSpec(
            base=BASE, axes=(GridAxis("target_fraction", (0.25, 1.0)),)
        )
        report = run_grid(grid, workers=1).report
        utils = {
            json.dumps(p): a["utilization_mean"]
            for p, a in ((x["point"], x) for x in report.aggregate_by_point())
        }
        assert len(utils) == 2


class TestCells:
    def test_run_grid_cell_applies_overrides(self):
        summary = run_grid_cell(
            BASE.to_dict(), {"sim_workers": 2, "overlap": False, "n": 16}, 0
        )
        assert summary["seed"] == grid_cell_seed(
            7, {"sim_workers": 2, "overlap": False, "n": 16}, 0
        )
        # barrier mode admits no overlaps
        assert all(not a["admitted"] for a in summary["admissions"])
        # n=16 -> 32 granules over the two phases
        assert summary["granules_executed"] == 32

    def test_fault_axes_inject_transients(self):
        clean = run_grid_cell(BASE.to_dict(), {"n": 24}, 0)
        faulty = run_grid_cell(
            BASE.to_dict(), {"transient_p": 0.05, "fault_seed": 3, "n": 24}, 0
        )
        # same seed, same workload — only the injected transients differ;
        # retries change the schedule, so the summaries cannot coincide
        assert faulty["seed"] != clean["seed"]  # fault axes are part of the point
        assert faulty["compute_time"] != clean["compute_time"]


class TestManifestResume:
    def test_resume_completes_interrupted_grid(self, tmp_path):
        manifest = tmp_path / "grid.jsonl"
        reference = run_grid(GRID, workers=1).report.to_json()
        run_grid(GRID, workers=1, manifest_path=manifest)
        lines = manifest.read_text().splitlines(keepends=True)
        manifest.write_text("".join(lines[:-3]))  # drop 3 completed cells
        outcome = run_grid(GRID, workers=1, manifest_path=manifest, resume=True)
        assert outcome.resumed == GRID.n_cells - 3
        assert outcome.report.to_json() == reference

    def test_resume_refuses_mismatched_spec(self, tmp_path):
        manifest = tmp_path / "grid.jsonl"
        run_grid(GRID, workers=1, manifest_path=manifest)
        other = GridSpec(base=BASE, axes=(GridAxis("sim_workers", (2,)),))
        with pytest.raises(ValueError, match="different sweep spec"):
            run_grid(other, workers=1, manifest_path=manifest, resume=True)


class TestSharedMaps:
    def test_materialize_maps_is_deterministic(self):
        a, b = materialize_maps(GRID), materialize_maps(GRID)
        assert sorted(a) == ["IMAP"]
        np.testing.assert_array_equal(a["IMAP"], b["IMAP"])

    def test_shared_maps_actually_change_the_draw(self):
        maps = materialize_maps(GRID)
        with_shared = run_grid(GRID, workers=1, shared_maps=maps).report.to_json()
        without = run_grid(GRID, workers=1).report.to_json()
        assert with_shared != without


class TestObs:
    def test_record_grid_metrics_labels_by_axis(self):
        from repro.obs import MetricsRegistry, record_grid_metrics

        report = run_grid(GRID, workers=1).report
        registry = MetricsRegistry()
        record_grid_metrics(report, registry)
        series = registry.snapshot()["grid.utilization"]["series"]
        assert len(series) == GRID.n_cells
        assert (
            '{overlap="True",replication="0",sim_workers="2"}' in series
        ), sorted(series)


class TestCli:
    def test_cli_grid_roundtrip(self, tmp_path):
        report_path = tmp_path / "grid.json"
        code, text = run_cli(
            "sweep",
            "reverse-indirect",
            "--grid",
            "sim_workers=2,4",
            "--grid",
            "overlap=true,false",
            "--replications",
            "2",
            "--seed",
            "7",
            "--sim-workers",
            "4",
            "--param",
            "n=48",
            "-o",
            str(report_path),
        )
        assert code == 0
        assert "4 points x 2 replications = 8 cells" in text
        assert report_path.read_text() == run_grid(GRID, workers=1).report.to_json()

        code, text = run_cli("stats", "--sweep", str(report_path))
        assert code == 0
        assert "4 points, 8 cells" in text
        assert 'grid.utilization{overlap="True"' in text

    def test_cli_share_maps_requires_grid(self):
        import sys

        err = io.StringIO()
        old, sys.stderr = sys.stderr, err
        try:
            code, _ = run_cli("sweep", "identity", "--share-maps")
        finally:
            sys.stderr = old
        assert code == 2
        assert "--share-maps requires --grid" in err.getvalue()

    def test_cli_rejects_bad_axis(self):
        import sys

        err = io.StringIO()
        old, sys.stderr = sys.stderr, err
        try:
            code, _ = run_cli("sweep", "identity", "--grid", "seed=1,2")
        finally:
            sys.stderr = old
        assert code == 2
        assert "cannot be a grid axis" in err.getvalue()
