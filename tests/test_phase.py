"""Tests for phase specifications and phase programs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.mapping import IdentityMapping, NullMapping, UniversalMapping
from repro.core.phase import (
    ConstantCost,
    PhaseLink,
    PhaseProgram,
    PhaseSpec,
    SerialAction,
)


class TestConstantCost:
    def test_sample_and_mean(self):
        c = ConstantCost(2.5)
        rng = np.random.default_rng(0)
        assert c.sample(0, rng) == 2.5
        assert c.mean() == 2.5

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ConstantCost(-1.0)


class TestPhaseSpec:
    def test_valid(self):
        p = PhaseSpec("a", 10, lines=5)
        assert p.n_granules == 10 and p.lines == 5

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            PhaseSpec("", 10)

    def test_zero_granules_rejected(self):
        with pytest.raises(ValueError):
            PhaseSpec("a", 0)

    def test_negative_lines_rejected(self):
        with pytest.raises(ValueError):
            PhaseSpec("a", 1, lines=-1)


class TestSerialAction:
    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            SerialAction("s", -0.5)


class TestPhaseProgram:
    def phases(self, n=3):
        return [PhaseSpec(f"p{i}", 8) for i in range(n)]

    def test_chain_builds_links_and_schedule(self):
        prog = PhaseProgram.chain(self.phases(), [IdentityMapping(), UniversalMapping()])
        assert prog.phase_sequence() == ["p0", "p1", "p2"]
        assert isinstance(prog.mapping_between("p0", "p1"), IdentityMapping)
        assert isinstance(prog.mapping_between("p1", "p2"), UniversalMapping)

    def test_chain_mapping_count_validation(self):
        with pytest.raises(ValueError):
            PhaseProgram.chain(self.phases(3), [IdentityMapping()])

    def test_unlinked_pair_defaults_to_barrier(self):
        prog = PhaseProgram(self.phases(2), ["p0", "p1"])
        assert isinstance(prog.mapping_between("p0", "p1"), NullMapping)

    def test_duplicate_phase_name_rejected(self):
        with pytest.raises(ValueError):
            PhaseProgram([PhaseSpec("a", 1), PhaseSpec("a", 2)])

    def test_duplicate_link_rejected(self):
        phases = self.phases(2)
        links = [
            PhaseLink("p0", "p1", IdentityMapping()),
            PhaseLink("p0", "p1", UniversalMapping()),
        ]
        with pytest.raises(ValueError):
            PhaseProgram(phases, ["p0", "p1"], links)

    def test_dangling_schedule_name_rejected(self):
        with pytest.raises(ValueError):
            PhaseProgram(self.phases(2), ["p0", "nope"])

    def test_dangling_link_rejected(self):
        with pytest.raises(ValueError):
            PhaseProgram(self.phases(2), ["p0", "p1"], [PhaseLink("p0", "zz", IdentityMapping())])

    def test_serial_action_with_overlappable_mapping_rejected(self):
        phases = self.phases(2)
        schedule = ["p0", SerialAction("s", 1.0), "p1"]
        links = [PhaseLink("p0", "p1", IdentityMapping())]
        with pytest.raises(ValueError):
            PhaseProgram(phases, schedule, links)

    def test_serial_action_with_null_mapping_ok(self):
        phases = self.phases(2)
        schedule = ["p0", SerialAction("s", 1.0), "p1"]
        prog = PhaseProgram(phases, schedule, [PhaseLink("p0", "p1", NullMapping())])
        assert prog.adjacent_pairs() == [("p0", "p1", True)]

    def test_chain_inserts_serial_action_for_costed_null(self):
        prog = PhaseProgram.chain(self.phases(2), [NullMapping(serial_cost=3.0)])
        serials = [s for s in prog.schedule if isinstance(s, SerialAction)]
        assert len(serials) == 1 and serials[0].duration == 3.0

    def test_adjacent_pairs_skip_serials(self):
        prog = PhaseProgram.chain(
            self.phases(3), [NullMapping(serial_cost=1.0), IdentityMapping()]
        )
        assert prog.adjacent_pairs() == [("p0", "p1", True), ("p1", "p2", False)]

    def test_total_granules_counts_schedule_occurrences(self):
        phases = self.phases(2)
        prog = PhaseProgram(phases, ["p0", "p1", "p0"])
        assert prog.total_granules() == 24

    def test_total_lines(self):
        phases = [PhaseSpec("a", 1, lines=10), PhaseSpec("b", 1, lines=20)]
        assert PhaseProgram(phases).total_lines() == 30

    def test_default_schedule_is_phase_order(self):
        prog = PhaseProgram(self.phases(3))
        assert prog.phase_sequence() == ["p0", "p1", "p2"]


class TestRepeat:
    def phases(self):
        return [PhaseSpec("p0", 8), PhaseSpec("p1", 8)]

    def test_repeat_concatenates_schedule(self):
        prog = PhaseProgram.chain(self.phases(), [IdentityMapping()])
        tripled = prog.repeat(3)
        assert tripled.phase_sequence() == ["p0", "p1"] * 3
        assert tripled.total_granules() == 48

    def test_repeat_preserves_links_at_boundaries(self):
        phases = self.phases()
        links = [
            PhaseLink("p0", "p1", IdentityMapping()),
            PhaseLink("p1", "p0", UniversalMapping()),  # the cycle seam
        ]
        prog = PhaseProgram(phases, ["p0", "p1"], links)
        doubled = prog.repeat(2)
        pairs = doubled.adjacent_pairs()
        assert pairs == [("p0", "p1", False), ("p1", "p0", False), ("p0", "p1", False)]
        assert isinstance(doubled.mapping_between("p1", "p0"), UniversalMapping)

    def test_repeat_carries_serial_boundaries(self):
        prog = PhaseProgram(
            self.phases(),
            ["p0", "p1", SerialAction("wrap", 2.0)],
            [PhaseLink("p0", "p1", IdentityMapping())],
        )
        doubled = prog.repeat(2)
        assert doubled.adjacent_pairs() == [
            ("p0", "p1", False),
            ("p1", "p0", True),
            ("p0", "p1", False),
        ]

    def test_repeat_one_is_identity_shape(self):
        prog = PhaseProgram.chain(self.phases(), [IdentityMapping()])
        assert prog.repeat(1).phase_sequence() == prog.phase_sequence()

    def test_repeat_validation(self):
        prog = PhaseProgram.chain(self.phases(), [IdentityMapping()])
        with pytest.raises(ValueError):
            prog.repeat(0)

    def test_repeated_program_executes(self):
        from repro.core.overlap import OverlapConfig
        from repro.executive import run_program

        prog = PhaseProgram.chain(self.phases(), [IdentityMapping()]).repeat(4)
        r = run_program(prog, 4, config=OverlapConfig())
        assert r.granules_executed == 64
