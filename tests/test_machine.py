"""Tests for the machine model: tasks, management jobs, placements."""

from __future__ import annotations

import pytest

from repro.sim.engine import Simulator
from repro.sim.machine import ExecutivePlacement, Machine, ProcessorState
from repro.sim.trace import Trace


def make(n=2, placement=ExecutivePlacement.DEDICATED):
    sim = Simulator()
    tr = Trace()
    return sim, tr, Machine(sim, tr, n, placement)


class TestBasics:
    def test_requires_workers(self):
        sim, tr = Simulator(), Trace()
        with pytest.raises(ValueError):
            Machine(sim, tr, 0)

    def test_task_runs_and_completes(self):
        sim, tr, m = make()
        done = []
        assert m.start_task(m.processors[0], 2.0, lambda p: done.append(p.index))
        sim.run()
        assert done == [0]
        assert m.processors[0].tasks_completed == 1
        assert tr.busy_time("P0", "compute") == 2.0

    def test_busy_processor_refuses(self):
        sim, tr, m = make()
        m.start_task(m.processors[0], 2.0, lambda p: None)
        assert not m.start_task(m.processors[0], 1.0, lambda p: None)

    def test_negative_duration_rejected(self):
        sim, tr, m = make()
        with pytest.raises(ValueError):
            m.start_task(m.processors[0], -1.0, lambda p: None)
        with pytest.raises(ValueError):
            m.submit_mgmt(-1.0)

    def test_mgmt_fifo(self):
        sim, tr, m = make()
        order = []
        m.submit_mgmt(1.0, lambda: order.append("a"))
        m.submit_mgmt(1.0, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b"]
        assert m.mgmt_time() == 2.0
        assert m.mgmt_jobs_done == 2

    def test_callable_duration_evaluated_at_start(self):
        sim, tr, m = make()
        state = {"d": 1.0}
        m.submit_mgmt(5.0, lambda: state.update(d=3.0))  # runs first
        m.submit_mgmt(lambda: state["d"], None, "late")
        sim.run()
        assert sim.now == 8.0  # 5 + 3, not 5 + 1

    def test_callable_duration_negative_rejected(self):
        sim, tr, m = make()
        # executive is idle, so the job starts (and resolves) at submit time
        with pytest.raises(ValueError):
            m.submit_mgmt(lambda: -1.0)

    def test_background_waits_for_urgent(self):
        sim, tr, m = make()
        order = []
        m.submit_mgmt(1.0, lambda: order.append("bg"), background=True)
        m.submit_mgmt(1.0, lambda: order.append("urgent1"))
        m.submit_mgmt(1.0, lambda: order.append("urgent2"))
        sim.run()
        # bg was already running (submitted first), but both urgents beat
        # any not-yet-started background work
        assert order[0] == "bg"  # started immediately when idle
        m2_sim, _, m2 = make()
        order2 = []
        m2.submit_mgmt(1.0, lambda: order2.append("u1"))
        m2.submit_mgmt(1.0, lambda: order2.append("bg"), background=True)
        m2.submit_mgmt(1.0, lambda: order2.append("u2"))
        m2_sim.run()
        assert order2 == ["u1", "u2", "bg"]

    def test_executive_pending_counts_both_queues(self):
        sim, tr, m = make()
        m.submit_mgmt(1.0)  # starts immediately
        m.submit_mgmt(1.0)
        m.submit_mgmt(1.0, background=True)
        assert m.executive_pending() == 2


class TestDedicatedPlacement:
    def test_mgmt_does_not_block_workers(self):
        sim, tr, m = make(2, ExecutivePlacement.DEDICATED)
        m.submit_mgmt(10.0)
        assert len(m.idle_processors()) == 2
        done = []
        m.start_task(m.processors[0], 1.0, lambda p: done.append(p.index))
        sim.run()
        assert done == [0]
        assert sim.now == 10.0  # mgmt ran in parallel

    def test_no_exec_host(self):
        _, _, m = make(2, ExecutivePlacement.DEDICATED)
        assert m.exec_host is None


class TestSharedPlacement:
    def test_host_excluded_while_mgmt_pending(self):
        sim, tr, m = make(2, ExecutivePlacement.SHARED)
        m.submit_mgmt(5.0)
        idle = m.idle_processors()
        assert [p.index for p in idle] == [1]
        assert not m.start_task(m.processors[0], 1.0, lambda p: None)

    def test_host_computes_when_no_mgmt(self):
        sim, tr, m = make(2, ExecutivePlacement.SHARED)
        assert m.start_task(m.processors[0], 1.0, lambda p: None)

    def test_mgmt_waits_for_host_task(self):
        sim, tr, m = make(1, ExecutivePlacement.SHARED)
        events = []
        m.start_task(m.processors[0], 3.0, lambda p: events.append(("task", sim.now)))
        m.submit_mgmt(1.0, lambda: events.append(("mgmt", sim.now)))
        sim.run()
        assert events == [("task", 3.0), ("mgmt", 4.0)]
        # host busy time includes both compute and mgmt
        assert tr.busy_time("P0") == 4.0

    def test_mgmt_charged_to_host(self):
        sim, tr, m = make(1, ExecutivePlacement.SHARED)
        m.submit_mgmt(2.0)
        sim.run()
        assert tr.busy_time("P0", "mgmt") == 2.0
        assert tr.busy_time("EXEC", "mgmt") == 2.0

    def test_host_state_transitions(self):
        sim, tr, m = make(1, ExecutivePlacement.SHARED)
        states = []
        m.submit_mgmt(1.0, lambda: states.append(m.processors[0].state))
        sim.run()
        # during on_done the host is back to IDLE
        assert states == [ProcessorState.IDLE]

    def test_on_processor_idle_fires_after_mgmt_drain(self):
        sim, tr, m = make(1, ExecutivePlacement.SHARED)
        idles = []
        m.on_processor_idle = lambda p: idles.append((p.index, sim.now))
        m.submit_mgmt(1.0)
        m.submit_mgmt(1.0)
        sim.run()
        assert idles == [(0, 2.0)]


class TestStats:
    def test_compute_time_sums_workers(self):
        sim, tr, m = make(3)
        for p in m.processors:
            m.start_task(p, 2.0, lambda _: None)
        sim.run()
        assert m.compute_time() == 6.0

    def test_serial_category_counts_in_mgmt_time(self):
        sim, tr, m = make()
        m.submit_mgmt(3.0, category="serial")
        sim.run()
        assert m.mgmt_time() == 3.0
        assert tr.busy_time("EXEC", "serial") == 3.0
        assert tr.busy_time("EXEC", "mgmt") == 0.0
