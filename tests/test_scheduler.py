"""Tests for the event-driven PAX executive.

These exercise the core claims: overlap fills rundown for every
overlappable mapping kind, null mappings and serial actions force
barriers, lookahead is exactly one phase deep, split strategies shift
executive cost without changing results, and multi-stream batching
raises utilization while stretching per-job wall clock.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.granule import GranuleSet
from repro.core.mapping import (
    ForwardIndirectMapping,
    IdentityMapping,
    MappingKind,
    NullMapping,
    ReverseIndirectMapping,
    SeamMapping,
    UniversalMapping,
)
from repro.core.overlap import OverlapConfig, OverlapPolicy, SplitStrategy
from repro.core.phase import ConstantCost, PhaseProgram, PhaseSpec, SerialAction, PhaseLink
from repro.executive import ExecutiveCosts, ExecutiveSimulation, TaskSizer, run_program
from repro.sim.events import EventKind
from repro.sim.machine import ExecutivePlacement
from repro.workloads.generators import mapping_of_kind, synthetic_chain
from tests.conftest import two_phase_program

MAPPINGS = {
    "universal": UniversalMapping(),
    "identity": IdentityMapping(),
    "seam": SeamMapping((-1, 0, 1)),
    "null": NullMapping(),
}


def reverse_program(n=64, fan_in=3):
    return PhaseProgram.chain(
        [PhaseSpec("A", n), PhaseSpec("B", n)],
        [ReverseIndirectMapping("IMAP", fan_in=fan_in)],
        map_generators={"IMAP": lambda rng: rng.integers(0, n, size=(fan_in, n))},
    )


def forward_program(n=64):
    return PhaseProgram.chain(
        [PhaseSpec("A", n), PhaseSpec("B", n)],
        [ForwardIndirectMapping("FMAP")],
        map_generators={"FMAP": lambda rng: rng.integers(0, n, size=n)},
    )


class TestBasicExecution:
    def test_every_granule_executed_exactly_once(self, small_costs):
        for name, m in MAPPINGS.items():
            r = run_program(two_phase_program(m), 8, config=OverlapConfig(), costs=small_costs)
            assert r.granules_executed == 128, name

    def test_all_phases_complete_in_order(self, small_costs):
        prog = synthetic_chain([MappingKind.IDENTITY, MappingKind.UNIVERSAL, MappingKind.NULL])
        r = run_program(prog, 4, config=OverlapConfig(), costs=small_costs)
        times = [s.complete_time for s in r.phase_stats]
        assert all(t is not None for t in times)
        assert times == sorted(times)

    def test_single_phase_program(self, small_costs):
        prog = PhaseProgram([PhaseSpec("only", 32)])
        r = run_program(prog, 4, costs=small_costs)
        assert r.granules_executed == 32
        assert r.phase_stats[0].complete_time == r.makespan

    def test_single_worker(self, small_costs):
        r = run_program(two_phase_program(IdentityMapping(), n=16), 1, costs=small_costs)
        assert r.granules_executed == 32

    def test_more_workers_than_granules(self, free_costs):
        r = run_program(two_phase_program(UniversalMapping(), n=4), 16, costs=free_costs)
        assert r.granules_executed == 8

    def test_empty_program_rejected(self):
        with pytest.raises(ValueError):
            ExecutiveSimulation(PhaseProgram([PhaseSpec("a", 1)], []), 2)

    def test_run_only_once(self, small_costs):
        sim = ExecutiveSimulation(two_phase_program(IdentityMapping()), 2, costs=small_costs)
        sim.run()
        with pytest.raises(RuntimeError):
            sim.run()

    def test_deterministic_replay(self, small_costs):
        prog = synthetic_chain(
            [MappingKind.IDENTITY, MappingKind.REVERSE_INDIRECT], n_granules=48
        )
        r1 = run_program(prog, 6, config=OverlapConfig(), costs=small_costs, seed=11)
        r2 = run_program(prog, 6, config=OverlapConfig(), costs=small_costs, seed=11)
        assert r1.makespan == r2.makespan
        assert r1.mgmt_time == r2.mgmt_time
        assert [s.complete_time for s in r1.phase_stats] == [
            s.complete_time for s in r2.phase_stats
        ]

    def test_different_seed_changes_nothing_with_constant_costs(self, small_costs):
        prog = two_phase_program(IdentityMapping())
        r1 = run_program(prog, 4, costs=small_costs, seed=1)
        r2 = run_program(prog, 4, costs=small_costs, seed=2)
        assert r1.makespan == r2.makespan  # no stochastic elements anywhere


class TestOverlapBeatsBarrier:
    @pytest.mark.parametrize("name", ["universal", "identity", "seam"])
    def test_overlap_reduces_makespan(self, name, small_costs):
        prog = two_phase_program(MAPPINGS[name])
        rb = run_program(prog, 8, config=OverlapConfig.barrier(), costs=small_costs)
        ro = run_program(prog, 8, config=OverlapConfig(), costs=small_costs)
        assert ro.makespan < rb.makespan, name
        assert ro.utilization > rb.utilization, name

    def test_null_mapping_shows_no_gain(self, small_costs):
        prog = two_phase_program(NullMapping())
        rb = run_program(prog, 8, config=OverlapConfig.barrier(), costs=small_costs)
        ro = run_program(prog, 8, config=OverlapConfig(), costs=small_costs)
        assert ro.makespan == rb.makespan

    def test_reverse_indirect_overlap_helps_at_low_fan_in(self, small_costs):
        # fan_in=1: each successor granule waits on a single random
        # predecessor, so enablements arrive throughout the phase
        prog = reverse_program(fan_in=1)
        rb = run_program(prog, 8, config=OverlapConfig.barrier(), costs=small_costs, seed=3)
        ro = run_program(prog, 8, config=OverlapConfig(), costs=small_costs, seed=3)
        assert ro.makespan < rb.makespan

    def test_reverse_indirect_can_be_self_defeating_at_high_fan_in(self, small_costs):
        # the paper's warning: with wide random fan-in, successor granules
        # are enabled only near phase end, and the composite-map plus
        # enablement overhead can exceed the rundown savings
        prog = reverse_program(fan_in=3)
        rb = run_program(prog, 8, config=OverlapConfig.barrier(), costs=small_costs, seed=3)
        ro = run_program(prog, 8, config=OverlapConfig(), costs=small_costs, seed=3)
        assert ro.makespan >= rb.makespan

    def test_forward_indirect_overlap_helps(self, small_costs):
        prog = forward_program()
        rb = run_program(prog, 8, config=OverlapConfig.barrier(), costs=small_costs, seed=3)
        ro = run_program(prog, 8, config=OverlapConfig(), costs=small_costs, seed=3)
        assert ro.makespan < rb.makespan

    def test_overlapped_phase_starts_before_predecessor_ends(self, free_costs):
        # 68 granules on 8 workers leave a final-wave shortfall — the
        # rundown the successor's tasks fill
        prog = two_phase_program(UniversalMapping(), n=68)
        r = run_program(prog, 8, config=OverlapConfig(), costs=free_costs)
        pred, succ = r.phase_stats
        assert succ.first_task_start is not None and pred.complete_time is not None
        assert succ.first_task_start < pred.complete_time
        assert succ.overlapped

    def test_barrier_phase_starts_after_predecessor_ends(self, free_costs):
        prog = two_phase_program(UniversalMapping())
        r = run_program(prog, 8, config=OverlapConfig.barrier(), costs=free_costs)
        pred, succ = r.phase_stats
        assert succ.first_task_start >= pred.complete_time
        assert not succ.overlapped


class TestOrderingConstraints:
    def test_one_phase_lookahead_only(self, free_costs):
        # three universal phases: phase 2 must not start before phase 0 ends
        prog = synthetic_chain([MappingKind.UNIVERSAL, MappingKind.UNIVERSAL], n_granules=32)
        r = run_program(prog, 4, config=OverlapConfig(), costs=free_costs)
        p0, p1, p2 = r.phase_stats
        assert p2.first_task_start >= p0.complete_time

    def test_identity_granule_never_runs_before_enabler(self, free_costs):
        # with identity mapping, successor granule i's task must start
        # after the predecessor task containing i completed
        prog = two_phase_program(IdentityMapping(), n=32)
        sim = ExecutiveSimulation(prog, 4, config=OverlapConfig(), costs=free_costs)
        r = sim.run()
        starts = {}
        ends = {}
        for rec in r.trace.records:
            if rec.kind is EventKind.TASK_START and rec.detail["label"].startswith("B#1"):
                starts[rec.detail["label"]] = rec.time
            if rec.kind is EventKind.TASK_END and rec.detail["label"].startswith("A#0"):
                ends[rec.detail["label"]] = rec.time
        # every B task must start at or after some A end (first A end)
        if starts and ends:
            assert min(starts.values()) >= min(ends.values())

    def test_serial_action_forces_barrier_and_costs_time(self, small_costs):
        phases = [PhaseSpec("a", 16), PhaseSpec("b", 16)]
        prog = PhaseProgram(
            phases,
            ["a", SerialAction("decide", 5.0), "b"],
            [PhaseLink("a", "b", NullMapping())],
        )
        r = run_program(prog, 4, config=OverlapConfig(), costs=small_costs)
        assert r.serial_time == pytest.approx(5.0)
        a, b = r.phase_stats
        assert b.first_task_start >= a.complete_time + 5.0
        assert not b.overlapped


class TestSplitStrategies:
    @pytest.mark.parametrize("strategy", list(SplitStrategy))
    def test_all_strategies_complete_correctly(self, strategy, small_costs):
        prog = two_phase_program(IdentityMapping(), n=96)
        r = run_program(
            prog, 8, config=OverlapConfig(split_strategy=strategy), costs=small_costs
        )
        assert r.granules_executed == 192

    def test_demand_charges_most_on_critical_path(self, small_costs):
        # demand splitting inflates assignment time; the deferred
        # successor-splitting task moves that cost off the critical path
        prog = two_phase_program(IdentityMapping(), n=128)
        makespans = {}
        for strategy in SplitStrategy:
            r = run_program(
                prog, 8, config=OverlapConfig(split_strategy=strategy), costs=small_costs
            )
            makespans[strategy] = r.makespan
        assert makespans[SplitStrategy.PRESPLIT] <= makespans[SplitStrategy.DEMAND]

    def test_strategies_do_not_apply_to_universal(self, small_costs):
        # universal overlap needs no successor splits: all strategies agree
        prog = two_phase_program(UniversalMapping(), n=96)
        spans = {
            s: run_program(prog, 8, config=OverlapConfig(split_strategy=s), costs=small_costs).makespan
            for s in SplitStrategy
        }
        assert len(set(spans.values())) == 1


class TestIndirectControls:
    def test_elevation_accelerates_enablement(self, small_costs):
        n = 96
        # every successor granule depends on the tail cluster of
        # predecessors, which the natural dispatch order runs last;
        # elevation pulls those forward so successor work exists in time
        # to fill the rundown
        prog = PhaseProgram.chain(
            [PhaseSpec("A", n), PhaseSpec("B", n)],
            [ReverseIndirectMapping("IMAP", fan_in=1)],
            map_generators={"IMAP": lambda rng: (n - 6 + (np.arange(n) % 6)).copy()},
        )
        base = run_program(
            prog, 8,
            config=OverlapConfig(elevate_enabling_granules=False, composite_group_size=6),
            costs=small_costs,
        )
        elev = run_program(
            prog, 8,
            config=OverlapConfig(elevate_enabling_granules=True, composite_group_size=6),
            costs=small_costs,
        )
        assert elev.phase_stats[1].first_task_start < base.phase_stats[1].first_task_start
        assert elev.makespan <= base.makespan + 1e-9

    def test_target_fraction_limits_map_cost(self):
        costs = ExecutiveCosts(0.1, 0.1, 0.1, 0.05, 0.05, 0.05, map_entry=0.5)
        prog = reverse_program(n=64, fan_in=4)
        full = run_program(prog, 8, config=OverlapConfig(target_fraction=1.0), costs=costs, seed=5)
        part = run_program(prog, 8, config=OverlapConfig(target_fraction=0.25), costs=costs, seed=5)
        assert part.mgmt_time < full.mgmt_time
        assert part.granules_executed == full.granules_executed == 128

    def test_composite_group_size_tradeoff_completes(self, small_costs):
        for gs in (1, 4, 16, 64):
            r = run_program(
                reverse_program(), 8, config=OverlapConfig(composite_group_size=gs),
                costs=small_costs, seed=2,
            )
            assert r.granules_executed == 128

    def test_missing_map_generator_raises(self, small_costs):
        prog = PhaseProgram.chain(
            [PhaseSpec("A", 8), PhaseSpec("B", 8)],
            [ReverseIndirectMapping("NOPE", fan_in=1)],
        )
        with pytest.raises(KeyError):
            run_program(prog, 2, config=OverlapConfig(), costs=small_costs)


class TestSafetyVerification:
    def _phase(self, name, src, dst, n=24):
        from repro.core.access import AccessPattern, AffineIndex, ArrayRef

        return PhaseSpec(
            name,
            n,
            access=AccessPattern(
                reads=(ArrayRef(src, AffineIndex()),), writes=(ArrayRef(dst, AffineIndex()),)
            ),
        )

    def test_safe_pair_overlaps(self, free_costs):
        prog = PhaseProgram.chain(
            [self._phase("p", "A", "B"), self._phase("q", "B", "C")], [IdentityMapping()]
        )
        r = run_program(prog, 4, config=OverlapConfig(verify_safety=True), costs=free_costs)
        assert r.phase_stats[1].overlapped

    def test_unsafe_claim_falls_back_to_barrier(self, free_costs):
        # a universal mapping claimed over a true dependence is rejected
        prog = PhaseProgram.chain(
            [self._phase("p", "A", "B"), self._phase("q", "B", "C")], [UniversalMapping()]
        )
        r = run_program(prog, 4, config=OverlapConfig(verify_safety=True), costs=free_costs)
        assert not r.phase_stats[1].overlapped
        assert r.phase_stats[1].first_task_start >= r.phase_stats[0].complete_time
        assert r.granules_executed == 48

    def test_missing_footprint_falls_back(self, free_costs):
        prog = two_phase_program(UniversalMapping())
        r = run_program(prog, 4, config=OverlapConfig(verify_safety=True), costs=free_costs)
        assert not r.phase_stats[1].overlapped


class TestPlacement:
    def test_shared_executive_steals_worker_time(self):
        costs = ExecutiveCosts(0.2, 0.2, 0.2, 0.1, 0.1, 0.1, 0.01)
        prog = two_phase_program(IdentityMapping())
        ded = run_program(prog, 4, config=OverlapConfig(), costs=costs,
                          placement=ExecutivePlacement.DEDICATED)
        sha = run_program(prog, 4, config=OverlapConfig(), costs=costs,
                          placement=ExecutivePlacement.SHARED)
        assert sha.makespan > ded.makespan
        assert sha.granules_executed == ded.granules_executed

    def test_shared_host_mgmt_recorded_on_p0(self):
        costs = ExecutiveCosts(0.2, 0.2, 0.2, 0.1, 0.1, 0.1, 0.01)
        r = run_program(two_phase_program(IdentityMapping(), n=16), 2, costs=costs,
                        placement=ExecutivePlacement.SHARED)
        assert r.trace.busy_time("P0", "mgmt") > 0


class TestMultiStream:
    def job(self, n_phases=3, n=32):
        return PhaseProgram.chain(
            [PhaseSpec(f"p{i}", n) for i in range(n_phases)], [NullMapping()] * (n_phases - 1)
        )

    def test_batch_raises_utilization(self, small_costs):
        solo = run_program(self.job(), 8, config=OverlapConfig.barrier(), costs=small_costs)
        batch = run_program([self.job(), self.job()], 8,
                            config=OverlapConfig.barrier(), costs=small_costs)
        assert batch.utilization > solo.utilization

    def test_batch_stretches_wall_clock(self, small_costs):
        solo = run_program(self.job(), 8, config=OverlapConfig.barrier(), costs=small_costs)
        batch = run_program([self.job(), self.job()], 8,
                            config=OverlapConfig.barrier(), costs=small_costs)
        solo_wall = solo.stream_stats[0].wall_clock
        for s in batch.stream_stats:
            assert s.wall_clock > solo_wall

    def test_streams_complete_independently(self, small_costs):
        r = run_program([self.job(2), self.job(4)], 4,
                        config=OverlapConfig.barrier(), costs=small_costs)
        assert len(r.stream_stats) == 2
        assert r.granules_executed == 2 * 32 + 4 * 32

    def test_streams_with_overlap(self, small_costs):
        jobs = [
            PhaseProgram.chain([PhaseSpec("a", 32), PhaseSpec("b", 32)], [IdentityMapping()]),
            PhaseProgram.chain([PhaseSpec("a", 32), PhaseSpec("b", 32)], [UniversalMapping()]),
        ]
        r = run_program(jobs, 4, config=OverlapConfig(), costs=small_costs)
        assert r.granules_executed == 128


class TestRundownStats:
    def test_rundown_window_recorded(self, small_costs):
        r = run_program(two_phase_program(IdentityMapping()), 8, costs=small_costs)
        for s in r.phase_stats:
            w = s.rundown_window
            assert w is not None and w[0] <= w[1]

    def test_tasks_counted(self, small_costs, sizer):
        r = run_program(two_phase_program(IdentityMapping(), n=64), 8,
                        config=OverlapConfig.barrier(), costs=small_costs, sizer=sizer)
        # 64 granules / 4 per task = 16 tasks per phase
        assert r.phase_stats[0].tasks == 16


# ---------------------------------------------------------------- properties
@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.sampled_from(
            [MappingKind.UNIVERSAL, MappingKind.IDENTITY, MappingKind.SEAM,
             MappingKind.NULL, MappingKind.REVERSE_INDIRECT, MappingKind.FORWARD_INDIRECT]
        ),
        min_size=1,
        max_size=4,
    ),
    st.integers(min_value=1, max_value=12),
    st.integers(min_value=4, max_value=40),
    st.integers(min_value=0, max_value=999),
)
def test_overlap_rarely_worse_with_free_executive(kinds, workers, granules, seed):
    """With a zero-cost executive, next-phase overlap essentially only helps.

    "Essentially": greedy non-preemptive list scheduling is subject to
    Graham's anomalies — added flexibility (early-released successor
    chunks) can occasionally fragment descriptions into one extra wave.
    The anomaly is bounded; we allow one task-sized slack over the
    barrier schedule, never more.
    """
    prog = synthetic_chain(kinds, n_granules=granules, fan_in=2)
    rb = run_program(prog, workers, config=OverlapConfig.barrier(),
                     costs=ExecutiveCosts.free(), seed=seed)
    ro = run_program(prog, workers, config=OverlapConfig(),
                     costs=ExecutiveCosts.free(), seed=seed)
    assert ro.granules_executed == rb.granules_executed == prog.total_granules()
    # one task is at most ceil(granules / (2 * workers)) granule-times
    task_time = -(-granules // (2 * workers))
    assert ro.makespan <= rb.makespan + task_time + 1e-9


@settings(max_examples=30, deadline=None)
@given(
    st.sampled_from(list(SplitStrategy)),
    st.integers(min_value=1, max_value=8),
    st.integers(min_value=0, max_value=99),
)
def test_every_configuration_executes_all_granules(strategy, workers, seed):
    prog = synthetic_chain(
        [MappingKind.IDENTITY, MappingKind.SEAM, MappingKind.REVERSE_INDIRECT],
        n_granules=[24, 30, 18, 26],
        fan_in=2,
    )
    r = run_program(
        prog,
        workers,
        config=OverlapConfig(split_strategy=strategy, elevate_enabling_granules=bool(seed % 2)),
        costs=ExecutiveCosts(0.05, 0.05, 0.05, 0.02, 0.02, 0.02, 0.001),
        seed=seed,
    )
    assert r.granules_executed == 24 + 30 + 18 + 26
    assert all(s.complete_time is not None for s in r.phase_stats)
