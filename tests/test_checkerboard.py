"""Tests for the checkerboard SOR solver and its phase program."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.classifier import classify_pair
from repro.core.mapping import MappingKind, SeamMapping
from repro.workloads.checkerboard import (
    CheckerboardSOR,
    checkerboard_program,
    phase_computations,
)


class TestPhaseComputations:
    def test_paper_example(self):
        assert phase_computations(1024) == 524_288

    def test_validation(self):
        with pytest.raises(ValueError):
            phase_computations(0)


class TestCheckerboardSOR:
    def test_laplace_converges_to_boundary_interpolation(self):
        s = CheckerboardSOR(15)
        s.set_boundary(top=1.0, bottom=1.0, left=1.0, right=1.0)
        iters = s.solve(tol=1e-10)
        # with all-1 boundary and zero f, the solution is identically 1
        assert np.allclose(s.u[1:-1, 1:-1], 1.0, atol=1e-8)
        assert iters > 0

    def test_matches_dense_solution(self):
        # cross-check against a direct linear solve of the 5-point system
        n = 8
        rng = np.random.default_rng(0)
        f = rng.normal(size=(n, n))
        s = CheckerboardSOR(n, f=f)
        s.solve(tol=1e-12, max_iters=10_000)

        # build the dense Laplacian: u_{i-1,j}+u_{i+1,j}+u_{i,j-1}+u_{i,j+1}-4u = f
        N = n * n
        A = np.zeros((N, N))
        for i in range(n):
            for j in range(n):
                k = i * n + j
                A[k, k] = -4.0
                for di, dj in ((-1, 0), (1, 0), (0, -1), (0, 1)):
                    ii, jj = i + di, j + dj
                    if 0 <= ii < n and 0 <= jj < n:
                        A[k, ii * n + jj] = 1.0
        u_direct = np.linalg.solve(A, f.ravel()).reshape(n, n)
        assert np.allclose(s.u[1:-1, 1:-1], u_direct, atol=1e-8)

    def test_red_black_masks_partition_interior(self):
        s = CheckerboardSOR(10)
        assert (s._red ^ s._black).all()
        assert s._red.sum() + s._black.sum() == 100

    def test_sweep_updates_only_one_color(self):
        s = CheckerboardSOR(6)
        s.set_boundary(top=1.0)
        before = s.u.copy()
        s.sweep_red()
        changed = s.u[1:-1, 1:-1] != before[1:-1, 1:-1]
        assert not changed[s._black].any()

    def test_residual_decreases(self):
        s = CheckerboardSOR(12)
        s.set_boundary(top=1.0, left=-1.0)
        r0 = s.residual()
        for _ in range(20):
            s.iterate()
        assert s.residual() < r0

    def test_optimal_omega_default(self):
        s = CheckerboardSOR(31)
        assert s.omega == pytest.approx(2.0 / (1.0 + math.sin(math.pi / 32)))

    def test_validation(self):
        with pytest.raises(ValueError):
            CheckerboardSOR(0)
        with pytest.raises(ValueError):
            CheckerboardSOR(4, omega=2.5)
        with pytest.raises(ValueError):
            CheckerboardSOR(4, f=np.zeros((3, 3)))

    def test_max_iters_guard(self):
        s = CheckerboardSOR(12)
        s.set_boundary(top=1.0)
        with pytest.raises(RuntimeError):
            s.solve(tol=1e-16, max_iters=1)


class TestCheckerboardProgram:
    def test_phase_structure(self):
        prog = checkerboard_program(64, rows_per_granule=4, n_iterations=2)
        assert prog.phase_sequence() == ["red0", "black0", "red1", "black1"]
        assert prog.phases["red0"].n_granules == 16

    def test_all_links_are_seam(self):
        prog = checkerboard_program(32, rows_per_granule=2, n_iterations=2)
        for a, b, _ in prog.adjacent_pairs():
            m = prog.mapping_between(a, b)
            assert isinstance(m, SeamMapping)
            assert m.offsets == (-1, 0, 1)

    def test_footprints_classify_as_seam(self):
        prog = checkerboard_program(32, rows_per_granule=2)
        red, black = prog.phases["red0"], prog.phases["black0"]
        c = classify_pair(red, black)
        assert c.kind is MappingKind.SEAM
        assert set(c.offsets) == {-1, 0, 1}

    def test_validation(self):
        with pytest.raises(ValueError):
            checkerboard_program(0)
        with pytest.raises(ValueError):
            checkerboard_program(8, rows_per_granule=0)
        with pytest.raises(ValueError):
            checkerboard_program(8, n_iterations=0)

    def test_runs_on_executive_with_overlap(self):
        from repro.core.overlap import OverlapConfig
        from repro.executive import ExecutiveCosts, run_program

        prog = checkerboard_program(32, rows_per_granule=2, n_iterations=2, cost_per_cell=0.01)
        rb = run_program(prog, 4, config=OverlapConfig.barrier(), costs=ExecutiveCosts.free())
        ro = run_program(prog, 4, config=OverlapConfig(), costs=ExecutiveCosts.free())
        assert ro.makespan <= rb.makespan
        assert ro.granules_executed == rb.granules_executed


class TestCheckerboardBlocks:
    def test_block_count(self):
        from repro.workloads.checkerboard import checkerboard_program_blocks

        prog = checkerboard_program_blocks(64, block_side=8, n_iterations=2)
        assert prog.phases["red0"].n_granules == 64  # 8x8 blocks
        assert prog.phase_sequence() == ["red0", "black0", "red1", "black1"]

    def test_grid_seam_links(self):
        from repro.workloads.checkerboard import checkerboard_program_blocks

        prog = checkerboard_program_blocks(64, block_side=8)
        m = prog.mapping_between("red0", "black0")
        assert isinstance(m, SeamMapping)
        assert m.offsets == (-8, -1, 0, 1, 8)

    def test_validation(self):
        from repro.workloads.checkerboard import checkerboard_program_blocks

        with pytest.raises(ValueError):
            checkerboard_program_blocks(0)
        with pytest.raises(ValueError):
            checkerboard_program_blocks(8, n_iterations=0)

    def test_runs_with_overlap_gain(self):
        from repro.core.overlap import OverlapConfig
        from repro.executive import ExecutiveCosts, run_program
        from repro.workloads.checkerboard import checkerboard_program_blocks

        prog = checkerboard_program_blocks(48, block_side=6, n_iterations=2, cost_per_cell=0.1)
        costs = ExecutiveCosts(0.05, 0.05, 0.05, 0.02, 0.02, 0.02, 0.001)
        rb = run_program(prog, 6, config=OverlapConfig.barrier(), costs=costs)
        ro = run_program(prog, 6, config=OverlapConfig(), costs=costs)
        assert ro.granules_executed == rb.granules_executed
        assert ro.makespan < rb.makespan
