"""Cross-module integration tests and system-level invariants.

These exercise full pipelines (language → executive → metrics; workloads
→ classifier → safety check → simulation) and, crucially, a
property-based guard over the whole configuration space: *no granule is
ever executed twice and none is ever lost*, whatever the combination of
mapping kinds, overlap policy, split strategy, extensions, placement and
worker count.  (The middle-management extension once exposed exactly this
class of bug — out-of-order completion processing double-queueing
successor granules.)
"""

from __future__ import annotations

import re
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.classifier import classify_pair, classify_program, build_mapping
from repro.core.mapping import MappingKind
from repro.core.overlap import OverlapConfig, OverlapPolicy, SplitStrategy
from repro.core.phase import PhaseLink, PhaseProgram
from repro.core.predicate import overlap_is_safe
from repro.executive import ExecutiveCosts, Extensions, TaskSizer, run_program
from repro.sim.events import EventKind
from repro.sim.machine import ExecutivePlacement
from repro.workloads.generators import synthetic_chain


def executed_granule_multiset(result) -> Counter:
    """(run gid, granule) -> execution count, parsed from the task trace."""
    counts: Counter = Counter()
    for rec in result.trace.records:
        if rec.kind is not EventKind.TASK_START:
            continue
        label = rec.detail["label"]
        m = re.search(r"#(\d+):GranuleSet\((.*)\)$", label)
        if not m:
            continue
        gid, ranges = m.groups()
        for a, b in re.findall(r"\[(\d+),(\d+)\)", ranges):
            for g in range(int(a), int(b)):
                counts[(int(gid), g)] += 1
    return counts


KINDS = [
    MappingKind.UNIVERSAL,
    MappingKind.IDENTITY,
    MappingKind.SEAM,
    MappingKind.NULL,
    MappingKind.REVERSE_INDIRECT,
    MappingKind.FORWARD_INDIRECT,
]


@settings(max_examples=40, deadline=None)
@given(
    kinds=st.lists(st.sampled_from(KINDS), min_size=1, max_size=3),
    workers=st.integers(min_value=1, max_value=10),
    granules=st.integers(min_value=5, max_value=50),
    policy=st.sampled_from(list(OverlapPolicy)),
    strategy=st.sampled_from(list(SplitStrategy)),
    middle_managers=st.integers(min_value=1, max_value=4),
    lateral=st.booleans(),
    proximity=st.booleans(),
    placement=st.sampled_from(list(ExecutivePlacement)),
    seed=st.integers(min_value=0, max_value=999),
)
def test_exactly_once_execution_across_configuration_space(
    kinds, workers, granules, policy, strategy, middle_managers, lateral, proximity,
    placement, seed,
):
    """Every granule of every phase executes exactly once — always."""
    if placement is ExecutivePlacement.SHARED:
        middle_managers = min(middle_managers, workers)
    prog = synthetic_chain(kinds, n_granules=granules, fan_in=2)
    result = run_program(
        prog,
        workers,
        config=OverlapConfig(policy=policy, split_strategy=strategy),
        costs=ExecutiveCosts(0.05, 0.05, 0.05, 0.02, 0.02, 0.02, 0.001),
        sizer=TaskSizer(2.0),
        placement=placement,
        seed=seed,
        extensions=Extensions(
            middle_managers=middle_managers,
            lateral_handoff=lateral,
            lateral_cost=0.01,
            data_proximity=proximity,
            remote_penalty=1.25 if proximity else 1.0,
        ),
    )
    expected_total = (len(kinds) + 1) * granules
    assert result.granules_executed == expected_total
    counts = executed_granule_multiset(result)
    dupes = {k: v for k, v in counts.items() if v != 1}
    assert not dupes, f"granules executed != once: {dupes}"
    assert len(counts) == expected_total


class TestLanguageToMetricsPipeline:
    def test_full_stack(self):
        source = (
            "DEFINE PHASE load GRANULES=60 COST=1.0\n"
            "DEFINE PHASE transform GRANULES=60 COST=1.0\n"
            "DEFINE PHASE store GRANULES=40 COST=0.5\n"
            "DISPATCH load ENABLE [transform/MAPPING=IDENTITY]\n"
            "DISPATCH transform ENABLE [store/MAPPING=UNIVERSAL]\n"
            "DISPATCH store\n"
        )
        from repro.lang import compile_program
        from repro.metrics import render_gantt, rundown_reports

        program = compile_program(source)
        result = run_program(program, 6, config=OverlapConfig(), seed=1)
        assert result.granules_executed == 160
        reports = rundown_reports(result)
        assert reports
        chart = render_gantt(result.trace, width=60)
        assert "P0" in chart

    def test_language_program_with_extensions(self):
        from repro.lang import compile_program

        source = (
            "DEFINE PHASE a GRANULES=64\nDEFINE PHASE b GRANULES=64\n"
            "DISPATCH a ENABLE [b/MAPPING=IDENTITY]\nDISPATCH b\n"
        )
        program = compile_program(source)
        result = run_program(
            program, 8,
            costs=ExecutiveCosts(0.3, 0.3, 0.3, 0.1, 0.1, 0.1, 0.01),
            extensions=Extensions(middle_managers=2, lateral_handoff=True),
        )
        assert result.granules_executed == 128
        assert result.lateral_handoffs > 0


class TestClassifierToSchedulerPipeline:
    def test_classified_mappings_are_safe_and_runnable(self):
        """Classify the checkerboard pair, build the mapping it names,
        machine-check safety, then run it — the full autonomy loop."""
        from repro.workloads.checkerboard import checkerboard_program

        base = checkerboard_program(48, rows_per_granule=2, n_iterations=2)
        phases = list(base.phases.values())
        links = []
        for a, b, serial in base.adjacent_pairs():
            verdict = classify_pair(base.phases[a], base.phases[b], serial)
            mapping = build_mapping(verdict)
            report = overlap_is_safe(base.phases[a], base.phases[b], mapping)
            assert report.safe, (a, b, verdict)
            links.append(PhaseLink(a, b, mapping))
        rebuilt = PhaseProgram(phases, base.phase_sequence(), links)
        result = run_program(rebuilt, 6, config=OverlapConfig(verify_safety=True), seed=2)
        assert result.granules_executed == rebuilt.total_granules()
        # the safety-verified overlap actually engaged
        assert any(s.overlapped for s in result.phase_stats[1:])

    def test_casper_census_drives_overlap_expectations(self):
        """The fraction of overlapped phase transitions in an actual CASPER
        run matches what the census predicts is overlappable."""
        from repro.workloads.casper import casper_suite

        prog = casper_suite(granule_scale=0.4)
        census = classify_program(prog, wrap=False)  # linear run: 21 pairs
        result = run_program(prog, 8, config=OverlapConfig(),
                             costs=ExecutiveCosts.pax_like(), seed=3)
        overlapped = sum(1 for s in result.phase_stats[1:] if s.overlapped)
        expected = sum(
            1 for c in census.classifications if c.kind.overlappable
        )
        assert overlapped == expected
