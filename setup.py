"""Build script; optionally compiles the simulation inner loops.

A plain ``pip install .`` builds a pure-python package.  Setting
``REPRO_BUILD_COMPILED=1`` additionally generates the ``repro._compiled``
bundle — byte-identical copies of the three inner-loop modules
(``repro/sim/engine.py``, ``repro/sim/machine.py``,
``repro/executive/hotloop.py``) with intra-bundle imports rewritten —
and compiles it with **mypyc**, falling back to **Cython** in pure-python
mode, falling back to skipping compilation entirely when neither is
installed.  The runtime loader (:mod:`repro._speed`) only accepts real
extension modules, so a skipped or failed build degrades silently to the
pure-python fast path.  See docs/PERFORMANCE.md, "Compiled inner loops".
"""

from __future__ import annotations

import os
import re
import sys
from pathlib import Path

from setuptools import setup

HERE = Path(__file__).resolve().parent
SRC = HERE / "src" / "repro"

#: (source path relative to src/repro, bundle module name)
COMPILED_SOURCES = (
    ("sim/engine.py", "engine"),
    ("sim/machine.py", "machine"),
    ("executive/hotloop.py", "hotloop"),
)

#: imports of bundled modules are rewritten to stay inside the bundle, so
#: e.g. the compiled machine uses the compiled engine's Simulator/Event.
_BUNDLE_IMPORT = re.compile(
    r"^(\s*)from repro\.(?:sim\.(engine|machine)|executive\.(hotloop)) import",
    re.MULTILINE,
)


def _rewrite(text: str) -> str:
    def sub(m: "re.Match[str]") -> str:
        name = m.group(2) or m.group(3)
        return f"{m.group(1)}from repro._compiled.{name} import"

    return _BUNDLE_IMPORT.sub(sub, text)


def _generate_bundle() -> list[str]:
    out_dir = SRC / "_compiled"
    paths = []
    for rel, name in COMPILED_SOURCES:
        dest = out_dir / f"{name}.py"
        dest.write_text(_rewrite((SRC / rel).read_text(encoding="utf-8")), encoding="utf-8")
        paths.append(str(dest))
    return paths


def _ext_modules():
    if os.environ.get("REPRO_BUILD_COMPILED", "0") != "1":
        return []
    paths = _generate_bundle()
    try:
        from mypyc.build import mypycify

        return mypycify(paths)
    except Exception as exc:  # mypyc missing or refused the sources
        print(f"setup.py: mypyc unavailable ({exc}); trying Cython", file=sys.stderr)
    try:
        from Cython.Build import cythonize

        return cythonize(paths, language_level=3)
    except Exception as exc:
        print(
            f"setup.py: Cython unavailable ({exc}); building pure-python only "
            "(repro._speed will fall back at runtime)",
            file=sys.stderr,
        )
        # leave no stray sources behind: the loader rejects .py copies,
        # but a clean tree avoids confusing editable installs
        for rel, name in COMPILED_SOURCES:
            (SRC / "_compiled" / f"{name}.py").unlink(missing_ok=True)
        return []


setup(ext_modules=_ext_modules())
